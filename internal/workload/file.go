package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// The file source loads benchmark Specs from JSON, so new synthetic
// benchmarks can be defined without recompiling. A file holds either a
// single Spec object or an array of Specs; references select one:
//
//	file:mybench.json            single-spec file (or a one-element array)
//	file:mybenches.json#kernel7  entry "kernel7" of a multi-spec file
//
// Field names match the Spec struct ("Name", "Suite", "HotKernels",
// ...); Suite accepts the display names and the short aliases of
// ParseSuite. Unknown fields are rejected so typos surface instead of
// silently producing a default benchmark.
type fileSource struct{}

func (fileSource) Scheme() string { return "file" }

func (fileSource) Open(name string) (Program, error) {
	path, frag := name, ""
	if i := strings.IndexByte(name, '#'); i >= 0 {
		path, frag = name[:i], name[i+1:]
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: file source: %w", err)
	}
	defer f.Close()
	specs, err := DecodeSpecs(f)
	if err != nil {
		return nil, fmt.Errorf("workload: file source %s: %w", path, err)
	}
	spec, err := selectSpec(specs, frag)
	if err != nil {
		return nil, fmt.Errorf("workload: file source %s: %w", path, err)
	}
	return SpecProgram{Spec: spec, Source: "file"}, nil
}

// DecodeSpecs reads one Spec or an array of Specs from JSON, validating
// each. Unknown fields are errors.
func DecodeSpecs(r io.Reader) ([]Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var specs []Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := dec.Decode(&specs); err != nil {
			return nil, err
		}
	} else {
		var s Spec
		if err := dec.Decode(&s); err != nil {
			return nil, err
		}
		specs = []Spec{s}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no specs defined")
	}
	for i := range specs {
		if specs[i].Name == "" {
			return nil, fmt.Errorf("spec %d has no Name", i)
		}
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// selectSpec picks the referenced entry: the fragment name when given,
// otherwise the file's sole spec.
func selectSpec(specs []Spec, frag string) (Spec, error) {
	if frag == "" {
		if len(specs) != 1 {
			names := make([]string, len(specs))
			for i, s := range specs {
				names[i] = s.Name
			}
			return Spec{}, fmt.Errorf("file defines %d specs; select one with #name (%s)",
				len(specs), strings.Join(names, ", "))
		}
		return specs[0], nil
	}
	for _, s := range specs {
		if s.Name == frag {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("no spec named %q", frag)
}
