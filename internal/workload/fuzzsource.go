package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// The fuzz source generates random-but-valid benchmark Specs from a
// seed, biased toward the program shapes that stress the translator:
// hot loops whose execution counts hover around the promotion
// thresholds, dense indirect-branch dispatchers exercising the IBTC,
// working sets reaching up to the jump-table region, and phased-style
// working-set shifts. References are "fuzz:<seed>[/<profile>]":
//
//	fuzz:42             profile "mixed" with seed 42
//	fuzz:42/indirect    indirect-branch-heavy program, seed 42
//
// The same generator feeds the differential-fuzzing oracle
// (internal/fuzz), the fuzzrun driver and the native go-fuzz harnesses;
// every generated spec passes Validate and stays within a bounded
// dynamic instruction budget so a single case never dominates a run.

// FuzzDefaultProfile is the profile used when a fuzz: reference names
// only a seed.
const FuzzDefaultProfile = "mixed"

// fuzzMaxDyn bounds the estimated dynamic guest instructions of a
// generated spec; Clamp enforces it after profile-specific drawing.
const fuzzMaxDyn = 500_000

// FuzzProfiles lists the generation biases accepted by GenSpec and the
// fuzz: reference form.
func FuzzProfiles() []string {
	return []string{"mixed", "hot", "indirect", "mem", "shift", "tiny", "rv32"}
}

// GenSpec deterministically generates a valid benchmark spec from a
// seed under a profile's bias. The same (seed, profile) pair always
// yields the same spec.
func GenSpec(seed int64, profile string) (Spec, error) {
	if profile == "" {
		profile = FuzzDefaultProfile
	}
	// Decorrelate the generator streams of different profiles on the
	// same seed without losing determinism.
	h := int64(0)
	for _, c := range profile {
		h = h*131 + int64(c)
	}
	r := rand.New(rand.NewSource(seed ^ h<<17))

	s := Spec{
		Name:  fmt.Sprintf("fuzz-%s-%d", profile, seed),
		Suite: Suites()[r.Intn(len(Suites()))],
		Seed:  seed,
	}
	switch profile {
	case "mixed":
		// Union of the biased ranges: anything the other profiles can
		// produce, the mixed profile can stumble into.
		s.HotKernels = r.Intn(5)
		s.KernelLen = 4 + r.Intn(40)
		s.KernelIter = nearThreshold(r)
		s.OuterIters = 1 + r.Intn(8)
		s.ColdBlocks = r.Intn(12)
		s.ColdLen = 4 + r.Intn(40)
		s.WarmBlocks = r.Intn(8)
		s.WarmLen = 4 + r.Intn(30)
		s.WarmIters = r.Intn(12)
		if r.Intn(2) == 0 {
			s.Fanout = 1 + r.Intn(64)
			s.DispatchIters = 1 + r.Intn(150)
			s.CaseCalls = r.Intn(2) == 0
		}
		s.UseCalls = r.Intn(2) == 0
		s.Irregular = r.Intn(3) == 0
		s.FPFrac, s.MemFrac, s.BranchFrac = fracs(r, 0.8)
		s.Footprint = pow2(r, 10, 23)
		s.Stride = pow2(r, 2, 9)

	case "hot":
		// Hot loops crossing (or hovering just under) the IM/BB and
		// BB/SB promotion thresholds — the tier-transition stressor.
		s.HotKernels = 1 + r.Intn(4)
		s.KernelLen = 6 + r.Intn(30)
		s.KernelIter = nearThreshold(r)
		s.OuterIters = 1 + r.Intn(4)
		s.ColdBlocks = r.Intn(4)
		s.ColdLen = 6 + r.Intn(20)
		s.WarmBlocks = r.Intn(4)
		s.WarmLen = 4 + r.Intn(16)
		s.WarmIters = 3 + r.Intn(6) // IM/BBth ballpark
		s.UseCalls = r.Intn(2) == 0
		s.FPFrac, s.MemFrac, s.BranchFrac = fracs(r, 0.6)
		s.Footprint = pow2(r, 10, 16)
		s.Stride = pow2(r, 2, 6)

	case "indirect":
		// Dense indirect branches through wide jump tables — the IBTC
		// and chaining stressor.
		s.Fanout = 8 + r.Intn(57) // 8..64
		s.DispatchIters = 40 + r.Intn(160)
		s.CaseCalls = r.Intn(2) == 0
		s.UseCalls = r.Intn(2) == 0
		s.OuterIters = 2 + r.Intn(6)
		s.HotKernels = r.Intn(3)
		s.KernelLen = 4 + r.Intn(16)
		s.KernelIter = 5 + r.Intn(60)
		s.FPFrac, s.MemFrac, s.BranchFrac = fracs(r, 0.5)
		s.Footprint = pow2(r, 10, 14)
		s.Stride = 4

	case "mem":
		// Memory-heavy kernels with footprints biased toward
		// MaxFootprint — working sets adjacent to the jump-table page —
		// and strides/irregularity exercising the rle alias discipline.
		s.HotKernels = 1 + r.Intn(3)
		s.KernelLen = 10 + r.Intn(40)
		s.KernelIter = 50 + r.Intn(400)
		s.OuterIters = 1 + r.Intn(4)
		s.MemFrac = 0.3 + 0.3*r.Float64()
		s.FPFrac = 0.1 * r.Float64()
		s.BranchFrac = 0.1 * r.Float64()
		s.Footprint = pow2(r, 18, 23) // up to MaxFootprint
		s.Stride = pow2(r, 2, 9)
		s.Irregular = r.Intn(2) == 0
		s.UseCalls = r.Intn(2) == 0

	case "shift":
		// Phased-style behaviour inside one program: many outer
		// iterations with a warm region that dies partway through (its
		// countdown expires), shifting the executed working set.
		s.OuterIters = 8 + r.Intn(8)
		s.HotKernels = 2 + r.Intn(3)
		s.KernelLen = 8 + r.Intn(24)
		s.KernelIter = 20 + r.Intn(100)
		s.WarmBlocks = 2 + r.Intn(6)
		s.WarmLen = 8 + r.Intn(24)
		s.WarmIters = 2 + r.Intn(6) // expires mid-run: a phase change
		s.ColdBlocks = 2 + r.Intn(6)
		s.ColdLen = 8 + r.Intn(24)
		if r.Intn(2) == 0 {
			s.Fanout = 4 + r.Intn(20)
			s.DispatchIters = 10 + r.Intn(60)
		}
		s.FPFrac, s.MemFrac, s.BranchFrac = fracs(r, 0.7)
		s.Footprint = pow2(r, 16, 22)
		s.Stride = pow2(r, 2, 8)
		s.Irregular = r.Intn(2) == 0

	case "tiny":
		// Minimal programs: the shapes minimized reproducers converge
		// to, exercised directly.
		s.HotKernels = r.Intn(2)
		s.KernelLen = 1 + r.Intn(8)
		s.KernelIter = 1 + r.Intn(12)
		s.OuterIters = 1 + r.Intn(3)
		s.ColdBlocks = r.Intn(2)
		s.ColdLen = 1 + r.Intn(6)
		if r.Intn(3) == 0 {
			s.Fanout = 1 + r.Intn(4)
			s.DispatchIters = 1 + r.Intn(6)
		}
		s.FPFrac, s.MemFrac, s.BranchFrac = fracs(r, 0.5)
		s.Footprint = 1 << 10
		s.Stride = 4

	case "rv32":
		// The mixed ranges retargeted to the RV32I frontend: same
		// structural coverage (threshold-straddling loops, dispatchers,
		// irregular memory) minus FP, which RV32I does not have. Keeping
		// the shapes aligned with "mixed" lets the differential oracle
		// compare tier behaviour across frontends on like programs.
		s.ISA = "rv32"
		s.HotKernels = r.Intn(5)
		s.KernelLen = 4 + r.Intn(40)
		s.KernelIter = nearThreshold(r)
		s.OuterIters = 1 + r.Intn(8)
		s.ColdBlocks = r.Intn(12)
		s.ColdLen = 4 + r.Intn(40)
		s.WarmBlocks = r.Intn(8)
		s.WarmLen = 4 + r.Intn(30)
		s.WarmIters = r.Intn(12)
		if r.Intn(2) == 0 {
			s.Fanout = 1 + r.Intn(64)
			s.DispatchIters = 1 + r.Intn(150)
			s.CaseCalls = r.Intn(2) == 0
		}
		s.UseCalls = r.Intn(2) == 0
		s.Irregular = r.Intn(3) == 0
		_, s.MemFrac, s.BranchFrac = fracs(r, 0.8)
		s.Footprint = pow2(r, 10, 23)
		s.Stride = pow2(r, 2, 9)

	default:
		return Spec{}, fmt.Errorf("workload: unknown fuzz profile %q (want %s)",
			profile, strings.Join(FuzzProfiles(), ", "))
	}
	if s.HotKernels > 0 && s.KernelIter == 0 {
		s.KernelIter = 1
	}
	s = s.Clamp(fuzzMaxDyn)
	if err := s.Validate(); err != nil {
		// Unreachable by construction; fail loudly rather than hand an
		// invalid spec to a fuzzing harness that assumes validity.
		return Spec{}, fmt.Errorf("workload: generated spec invalid: %w", err)
	}
	return s, nil
}

// nearThreshold draws a kernel iteration count biased to the promotion
// boundaries: around IM/BBth (block translated or not), around BB/SBth
// (superblock formed or not), and comfortably past it.
func nearThreshold(r *rand.Rand) int {
	switch r.Intn(3) {
	case 0:
		return 3 + r.Intn(6) // straddles the default BBThreshold (5)
	case 1:
		return 280 + r.Intn(50) // straddles the default SBThreshold (300)
	default:
		return 320 + r.Intn(200)
	}
}

// fracs draws an instruction-mix triple whose sum stays below max.
func fracs(r *rand.Rand, max float64) (fp, mem, br float64) {
	fp, mem, br = r.Float64(), r.Float64(), r.Float64()
	scale := max * r.Float64() / (fp + mem + br)
	return fp * scale, mem * scale, br * scale
}

// pow2 draws a power of two in [1<<lo, 1<<hi].
func pow2(r *rand.Rand, lo, hi int) int {
	return 1 << (lo + r.Intn(hi-lo+1))
}

// EstDynInsts estimates the dynamic guest instruction count of the
// generated program — coarse (body emission is stochastic) but good
// enough to keep fuzz cases within a time budget.
func (s *Spec) EstDynInsts() int {
	cold := s.ColdBlocks * (s.ColdLen + 1)
	kern := s.HotKernels * s.KernelIter * (s.KernelLen + 4)
	if s.UseCalls {
		kern += s.HotKernels * 2
	}
	disp := 0
	if s.Fanout > 0 {
		disp = s.DispatchIters * 16
		if s.CaseCalls {
			disp += s.DispatchIters * 8
		}
	}
	warmRuns := s.WarmIters
	if s.OuterIters < warmRuns {
		warmRuns = s.OuterIters
	}
	warm := warmRuns * (s.WarmBlocks*(s.WarmLen+1) + 6)
	return 8 + cold + s.OuterIters*(kern+disp+8) + warm
}

// EstStaticInsts estimates the static guest instruction count of the
// generated program — the guard fuzz harnesses apply before Build so a
// mutated corpus entry cannot demand a gigabyte of generated code.
func (s *Spec) EstStaticInsts() int {
	cold := s.ColdBlocks * (s.ColdLen + 2)
	warm := s.WarmBlocks*(s.WarmLen+2) + 8
	kern := s.HotKernels * (s.KernelLen + 6)
	disp := s.Fanout*14 + 12
	return 16 + cold + warm + kern + disp
}

// Clamp returns a copy whose estimated dynamic size is at most maxDyn,
// shrinking the repetition knobs (outer iterations first, then kernel
// and dispatcher counts) while preserving the spec's character. Specs
// already under budget are returned unchanged.
func (s Spec) Clamp(maxDyn int) Spec {
	// 256 halvings are enough for any int-ranged knob combination a
	// mutated corpus entry can carry.
	for i := 0; i < 256 && s.EstDynInsts() > maxDyn; i++ {
		switch {
		case s.OuterIters > 1:
			s.OuterIters = (s.OuterIters + 1) / 2
		case s.KernelIter > 1:
			s.KernelIter = (s.KernelIter + 1) / 2
		case s.DispatchIters > 1:
			s.DispatchIters = (s.DispatchIters + 1) / 2
		case s.WarmIters > 1:
			s.WarmIters = (s.WarmIters + 1) / 2
		case s.KernelLen > 1:
			s.KernelLen = (s.KernelLen + 1) / 2
		default:
			return s
		}
	}
	return s
}

// Shrink returns simplification candidates for the minimizer, most
// aggressive first: whole regions dropped, then counts halved, then
// flags and fractions cleared. Every candidate passes Validate and
// differs from the receiver; a receiver that cannot shrink returns nil.
func (s Spec) Shrink() []Spec {
	var out []Spec
	add := func(c Spec) {
		if c != s && c.Validate() == nil {
			out = append(out, c)
		}
	}
	mut := func(f func(*Spec)) {
		c := s
		f(&c)
		add(c)
	}

	// Drop whole regions.
	mut(func(c *Spec) { c.Fanout, c.DispatchIters, c.CaseCalls = 0, 0, false })
	mut(func(c *Spec) { c.HotKernels, c.KernelLen, c.UseCalls = 0, 0, false })
	mut(func(c *Spec) { c.WarmBlocks, c.WarmLen, c.WarmIters = 0, 0, 0 })
	mut(func(c *Spec) { c.ColdBlocks, c.ColdLen = 0, 0 })

	// Halve counts.
	half := func(v int) int { return v / 2 }
	mut(func(c *Spec) { c.HotKernels = half(c.HotKernels) })
	mut(func(c *Spec) {
		c.Fanout = half(c.Fanout)
		if c.Fanout == 0 {
			c.DispatchIters, c.CaseCalls = 0, false
		}
	})
	mut(func(c *Spec) { c.ColdBlocks = half(c.ColdBlocks) })
	mut(func(c *Spec) { c.WarmBlocks = half(c.WarmBlocks) })
	mut(func(c *Spec) {
		c.OuterIters = half(c.OuterIters)
		if c.OuterIters == 0 {
			c.OuterIters = 1
		}
	})
	mut(func(c *Spec) {
		c.KernelIter = half(c.KernelIter)
		if c.HotKernels > 0 && c.KernelIter == 0 {
			c.KernelIter = 1
		}
	})
	mut(func(c *Spec) { c.DispatchIters = half(c.DispatchIters) })
	mut(func(c *Spec) { c.KernelLen = half(c.KernelLen) })
	mut(func(c *Spec) { c.ColdLen = half(c.ColdLen) })
	mut(func(c *Spec) { c.WarmLen = half(c.WarmLen) })
	mut(func(c *Spec) { c.WarmIters = half(c.WarmIters) })

	// Clear flags and mix fractions; simplify memory shape.
	mut(func(c *Spec) { c.UseCalls = false })
	mut(func(c *Spec) { c.CaseCalls = false })
	mut(func(c *Spec) { c.Irregular = false })
	mut(func(c *Spec) { c.FPFrac = 0 })
	mut(func(c *Spec) { c.MemFrac = 0 })
	mut(func(c *Spec) { c.BranchFrac = 0 })
	mut(func(c *Spec) {
		if c.Footprint > 1<<10 {
			c.Footprint = c.Footprint >> 1
		}
	})
	mut(func(c *Spec) { c.Stride = 4 })
	return out
}

// EncodeSpec renders a spec as canonical JSON — the interchange form
// shared by the go-fuzz corpus, the fuzzrun driver and regression
// reports. DecodeSpec inverts it.
func EncodeSpec(s Spec) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec is a plain value type; Marshal cannot fail on it.
		panic(fmt.Sprintf("workload: encode spec: %v", err))
	}
	return b
}

// DecodeSpec parses a single JSON spec as written by EncodeSpec,
// validating it. Arrays are rejected: a corpus entry is one case.
func DecodeSpec(data []byte) (Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		return Spec{}, fmt.Errorf("workload: DecodeSpec wants a single spec object, got an array")
	}
	specs, err := DecodeSpecs(bytes.NewReader(data))
	if err != nil {
		return Spec{}, err
	}
	return specs[0], nil
}

// fuzzSource resolves "fuzz:<seed>[/<profile>]" references to
// generated specs.
type fuzzSource struct{}

func (fuzzSource) Scheme() string { return "fuzz" }

func (fuzzSource) Open(name string) (Program, error) {
	seedStr, profile := name, FuzzDefaultProfile
	if i := strings.IndexByte(name, '/'); i >= 0 {
		seedStr, profile = name[:i], name[i+1:]
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("workload: fuzz source: reference %q: want fuzz:<seed>[/<profile>] with an integer seed", name)
	}
	spec, err := GenSpec(seed, profile)
	if err != nil {
		return nil, err
	}
	return SpecProgram{Spec: spec, Source: "fuzz"}, nil
}

// List shows the reference form with the known profiles rather than
// enumerating an unbounded seed space.
func (fuzzSource) List() []string {
	out := make([]string, 0, len(FuzzProfiles()))
	for _, p := range FuzzProfiles() {
		out = append(out, "fuzz:<seed>/"+p)
	}
	return out
}
