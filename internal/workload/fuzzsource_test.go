package workload

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/emu"
)

func TestGenSpecDeterministicAndValid(t *testing.T) {
	for _, profile := range FuzzProfiles() {
		for seed := int64(0); seed < 50; seed++ {
			a, err := GenSpec(seed, profile)
			if err != nil {
				t.Fatalf("GenSpec(%d, %s): %v", seed, profile, err)
			}
			b, err := GenSpec(seed, profile)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("GenSpec(%d, %s) not deterministic:\n%+v\n%+v", seed, profile, a, b)
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("GenSpec(%d, %s) invalid: %v", seed, profile, err)
			}
			if got := a.EstDynInsts(); got > fuzzMaxDyn {
				t.Fatalf("GenSpec(%d, %s): estimated %d dynamic insts exceeds the %d budget",
					seed, profile, got, fuzzMaxDyn)
			}
		}
	}
}

func TestGenSpecProfilesDiffer(t *testing.T) {
	a, _ := GenSpec(7, "hot")
	b, _ := GenSpec(7, "indirect")
	if reflect.DeepEqual(a, b) {
		t.Fatal("profiles share a generator stream: hot and indirect gave the same spec")
	}
}

func TestGenSpecUnknownProfile(t *testing.T) {
	if _, err := GenSpec(1, "nope"); err == nil || !strings.Contains(err.Error(), "unknown fuzz profile") {
		t.Fatalf("unknown profile not rejected: %v", err)
	}
}

func TestFuzzGeneratedSpecsRun(t *testing.T) {
	// A sample of generated specs per profile must assemble and run to
	// completion on the reference emulator — "valid" means executable,
	// not just Validate-clean.
	for _, profile := range FuzzProfiles() {
		for seed := int64(0); seed < 4; seed++ {
			s, err := GenSpec(seed, profile)
			if err != nil {
				t.Fatal(err)
			}
			p, err := s.Build()
			if err != nil {
				t.Fatalf("%s: build: %v", s.Name, err)
			}
			e := emu.New(p)
			if err := e.Run(50_000_000); err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
			if e.DynInsts == 0 {
				t.Fatalf("%s: no instructions executed", s.Name)
			}
		}
	}
}

func TestFuzzSourceOpen(t *testing.T) {
	p, err := Open("fuzz:42")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "fuzz-mixed-42" {
		t.Fatalf("default profile name: %s", p.Name())
	}
	if p.Meta().Source != "fuzz" {
		t.Fatalf("meta source: %+v", p.Meta())
	}
	p2, err := Open("fuzz:42/indirect")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Name() != "fuzz-indirect-42" {
		t.Fatalf("profiled name: %s", p2.Name())
	}
	if _, err := Open("fuzz:notanumber"); err == nil {
		t.Fatal("non-integer seed accepted")
	}
	if _, err := Open("fuzz:1/nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	// The source must be registered and thus listed.
	found := false
	for _, s := range Sources() {
		if s == "fuzz" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fuzz not in Sources(): %v", Sources())
	}
}

func TestShrinkCandidatesValidAndSmaller(t *testing.T) {
	s, err := GenSpec(3, "mixed")
	if err != nil {
		t.Fatal(err)
	}
	cands := s.Shrink()
	if len(cands) == 0 {
		t.Fatal("freshly generated spec yields no shrink candidates")
	}
	for _, c := range cands {
		if err := c.Validate(); err != nil {
			t.Errorf("shrink candidate invalid: %v\n%+v", err, c)
		}
		if reflect.DeepEqual(c, s) {
			t.Errorf("shrink candidate equals the original")
		}
	}
}

func TestShrinkConverges(t *testing.T) {
	// Repeatedly taking the first candidate must reach a fixpoint in
	// bounded steps: every candidate strictly simplifies something, so
	// greedy minimization cannot loop forever.
	s, err := GenSpec(11, "indirect")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if i > 500 {
			t.Fatal("shrink did not converge in 500 steps")
		}
		cands := s.Shrink()
		if len(cands) == 0 {
			break
		}
		s = cands[0]
	}
	if s.Blocks() > 2 {
		t.Fatalf("fully shrunk spec still has %d blocks: %+v", s.Blocks(), s)
	}
}

func TestEncodeDecodeSpecRoundTrip(t *testing.T) {
	s, err := GenSpec(5, "mem")
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSpec(EncodeSpec(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip changed the spec:\n%+v\n%+v", s, got)
	}
	if _, err := DecodeSpec([]byte(`[{"Name":"a"}]`)); err == nil {
		t.Fatal("array accepted by DecodeSpec")
	}
	if _, err := DecodeSpec([]byte(`{"Name":"a","NoSuchField":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestClampBoundsDynamicSize(t *testing.T) {
	s := Spec{
		Name: "big", HotKernels: 4, KernelLen: 40, KernelIter: 10_000,
		OuterIters: 100, Footprint: 1 << 12, Stride: 4,
	}
	c := s.Clamp(100_000)
	if got := c.EstDynInsts(); got > 100_000 {
		t.Fatalf("clamped spec still estimates %d insts", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clamped spec invalid: %v", err)
	}
	small := s
	small.OuterIters, small.KernelIter = 1, 10
	if got := small.Clamp(1 << 30); !reflect.DeepEqual(got, small) {
		t.Fatal("under-budget spec was modified by Clamp")
	}
}

func TestValidateRejectsFuzzFoundShapes(t *testing.T) {
	// The gaps the fuzzing work closed: all were accepted before and
	// failed (or silently misbehaved) only inside Build or emitBody.
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"fraction sum over 1", Spec{Name: "x", OuterIters: 1, FPFrac: 0.5, MemFrac: 0.4, BranchFrac: 0.2}, "FPFrac+MemFrac+BranchFrac"},
		{"zero outer iters", Spec{Name: "x"}, "OuterIters"},
		{"zero kernel iters", Spec{Name: "x", OuterIters: 1, HotKernels: 1, KernelLen: 4}, "KernelIter"},
		{"fanout without dispatch", Spec{Name: "x", OuterIters: 1, Fanout: 4}, "DispatchIters 0"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	// Exact boundary: fractions summing to exactly 1 are a valid
	// all-special-ops body.
	ok := Spec{Name: "x", OuterIters: 1, FPFrac: 0.5, MemFrac: 0.25, BranchFrac: 0.25}
	if err := ok.Validate(); err != nil {
		t.Errorf("fraction sum of exactly 1 rejected: %v", err)
	}
}
