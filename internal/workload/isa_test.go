package workload

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/guest"
)

// TestMetaJSONRoundTripISA pins the interchange shape of Meta around
// the ISA field: it round-trips losslessly, and the empty (x86) value
// is omitted so pre-frontend serialized metadata stays byte-identical.
func TestMetaJSONRoundTripISA(t *testing.T) {
	for _, m := range []Meta{
		{Source: "synthetic", Suite: "int", Phases: 1},
		{Source: "rv32", Suite: "int", Phases: 1, ISA: "rv32"},
		{Source: "trace", Phases: 1, ISA: "rv32"},
	} {
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var got Meta
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip of %+v yielded %+v (json %s)", m, got, b)
		}
		if m.ISA == "" && bytes.Contains(b, []byte("isa")) {
			t.Errorf("x86 Meta grew an isa key: %s", b)
		}
		if m.ISA != "" && !bytes.Contains(b, []byte(`"isa":"rv32"`)) {
			t.Errorf("rv32 Meta lost its isa key: %s", b)
		}
	}
}

// TestTraceRecordsAndReplaysISA records an RV32I program, round-trips
// the trace envelope through JSON, and checks the frontend tag
// survives all the way to the replayed image.
func TestTraceRecordsAndReplaysISA(t *testing.T) {
	p, err := Open("rv32:998.specrand")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ISA != "rv32" {
		t.Fatalf("recorded trace carries ISA %q, want rv32", tr.ISA)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rt.ISA != "rv32" {
		t.Fatalf("trace round trip dropped the ISA: %q", rt.ISA)
	}
	replay := rt.Program()
	if got := replay.Meta().ISA; got != "rv32" {
		t.Fatalf("replay program Meta().ISA = %q", got)
	}
	img, err := replay.Build()
	if err != nil {
		t.Fatal(err)
	}
	isa, err := guest.ISAOf(img)
	if err != nil {
		t.Fatal(err)
	}
	if isa.Name != "rv32" {
		t.Fatalf("replayed image decodes under %q", isa.Name)
	}
}

// TestTraceRejectsUnknownISA: a trace tagged with an unregistered
// frontend must be refused at validation — replaying it would decode
// the image under the wrong instruction set.
func TestTraceRejectsUnknownISA(t *testing.T) {
	p, err := Open("synthetic:998.specrand")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("x86 trace invalid: %v", err)
	}
	tr.ISA = "z80"
	err = tr.Validate()
	if err == nil || !strings.Contains(err.Error(), "z80") {
		t.Fatalf("unregistered-ISA trace accepted: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err == nil {
		// WriteTrace may or may not validate; ReadTrace must.
		if _, err := ReadTrace(&buf); err == nil {
			t.Fatal("ReadTrace accepted a trace tagged with an unregistered ISA")
		}
	}
}

// TestRV32CatalogDecodesUnderRV32 checks every starter-catalog entry
// builds and its image decodes under the rv32 frontend.
func TestRV32CatalogDecodesUnderRV32(t *testing.T) {
	specs := RV32Catalog()
	if len(specs) == 0 {
		t.Fatal("empty RV32 catalog")
	}
	for _, s := range specs {
		if s.ISA != "rv32" {
			t.Fatalf("%s: catalog spec carries ISA %q", s.Name, s.ISA)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		img, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		isa, err := guest.ISAOf(img)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if isa.Name != "rv32" {
			t.Fatalf("%s: image decodes under %q", s.Name, isa.Name)
		}
	}
}

// TestRV32SourceListAndErrors pins the rv32: source behaviour: List
// enumerates the starter subset sorted, Open rejects names outside it
// with a message naming the ported set, and the opened program's
// fingerprint differs from the same name's x86 fingerprint (the
// store-address property the session aliasing test relies on).
func TestRV32SourceListAndErrors(t *testing.T) {
	src, ok := LookupSource("rv32")
	if !ok {
		t.Fatal("rv32 source not registered")
	}
	lister, ok := src.(Lister)
	if !ok {
		t.Fatal("rv32 source does not enumerate its programs")
	}
	names := lister.List()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("rv32 list unsorted: %v", names)
	}
	if len(names) != len(RV32Catalog()) {
		t.Fatalf("list has %d names, catalog %d", len(names), len(RV32Catalog()))
	}
	if _, err := Open("rv32:470.lbm"); err == nil {
		t.Fatal("rv32 source opened an unported benchmark")
	}
	x86p, err := Open("synthetic:429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	rvp, err := Open("rv32:429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(x86p) == Fingerprint(rvp) {
		t.Fatal("x86 and rv32 ports of 429.mcf share a fingerprint")
	}
}

// TestRefForISA pins the reference-redirection rules -isa is built on.
func TestRefForISA(t *testing.T) {
	for _, tc := range []struct{ ref, isa, want string }{
		{"429.mcf", "", "429.mcf"},
		{"429.mcf", "x86", "429.mcf"},
		{"429.mcf", "rv32", "rv32:429.mcf"},
		{"synthetic:429.mcf", "rv32", "rv32:429.mcf"},
		{"trace:run.trace.json", "rv32", "trace:run.trace.json"},
		{"fuzz:7/mixed", "rv32", "fuzz:7/mixed"},
	} {
		if got := RefForISA(tc.ref, tc.isa); got != tc.want {
			t.Errorf("RefForISA(%q, %q) = %q, want %q", tc.ref, tc.isa, got, tc.want)
		}
	}
}
