package workload

import (
	"crypto/sha256"
	"fmt"
	"strings"

	"repro/internal/guest"
	"repro/internal/mem"
)

// The phased source concatenates member benchmarks into one program
// that executes them as distinct sequential phases. Each phase is a
// complete benchmark body (initialization, cold/warm regions, hot
// kernels, dispatcher) with its own label namespace and jump-table
// page; the final halt of every phase but the last is replaced by a
// jump to the next phase's entry. Phase changes retire one working set
// of hot code and bring in another, which is exactly the access
// pattern that stresses code-cache eviction and retranslation in a way
// no single catalog entry can — a single benchmark's hot set is live
// for the whole run.
//
//	phased:401.bzip2+462.libquantum+429.mcf
//
// Members resolve through the synthetic catalog.

const (
	// MaxPhases bounds a composite: each phase owns one jump-table
	// page inside the table region.
	MaxPhases = 64
	// phaseTableStride separates per-phase dispatcher jump tables (a
	// page each; the widest allowed fanout needs 64×4 = 256 bytes).
	phaseTableStride = 0x1000
	// phaseSep separates member names in a phased reference.
	phaseSep = "+"
)

// phasedSource resolves "+"-separated catalog member lists.
type phasedSource struct{}

func (phasedSource) Scheme() string { return "phased" }

func (phasedSource) Open(name string) (Program, error) {
	var members []Spec
	for _, n := range strings.Split(name, phaseSep) {
		spec, err := ByName(strings.TrimSpace(n))
		if err != nil {
			return nil, fmt.Errorf("workload: phased member: %w", err)
		}
		members = append(members, spec)
	}
	return Phased("", members...)
}

// Phased composes member specs into a multi-phase Program. An empty
// name derives the canonical "a+b+c" member join; the member count is
// bounded by MaxPhases.
func Phased(name string, members ...Spec) (Program, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("workload: phased program needs at least one member")
	}
	if len(members) > MaxPhases {
		return nil, fmt.Errorf("workload: phased program has %d members, max %d", len(members), MaxPhases)
	}
	if name == "" {
		names := make([]string, len(members))
		for i, m := range members {
			names[i] = m.Name
		}
		name = strings.Join(names, phaseSep)
	}
	return phasedProgram{name: name, members: append([]Spec(nil), members...)}, nil
}

type phasedProgram struct {
	name    string
	members []Spec
}

func (p phasedProgram) Name() string { return p.name }

func (p phasedProgram) Meta() Meta {
	return Meta{Source: "phased", Phases: len(p.members)}
}

// Scale implements Scalable by scaling every member.
func (p phasedProgram) Scale(f float64) Program {
	scaled := make([]Spec, len(p.members))
	for i, m := range p.members {
		scaled[i] = m.Scale(f)
	}
	return phasedProgram{name: p.name, members: scaled}
}

// Members returns copies of the member specs in phase order.
func (p phasedProgram) Members() []Spec { return append([]Spec(nil), p.members...) }

// Fingerprint hashes the member parameter sets in phase order.
func (p phasedProgram) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "phased|%s", p.name)
	for _, m := range p.members {
		fmt.Fprintf(h, "|%+v", m)
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

func phaseLabel(i int) string { return fmt.Sprintf("phase%d", i) }

// Build emits every member into one shared builder. Member data
// regions overlap deliberately (each phase re-initializes what it
// reads); jump tables get one page each.
func (p phasedProgram) Build() (*guest.Program, error) {
	b := guest.NewBuilder()
	b.Label("start")
	var tables []*pendingTable
	for i, m := range p.members {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("workload %s: phase %d: %w", p.name, i, err)
		}
		if i > 0 {
			b.Label(phaseLabel(i))
		}
		next := ""
		if i+1 < len(p.members) {
			next = phaseLabel(i + 1)
		}
		tbl := m.emitInto(b, emitCtx{
			prefix:    fmt.Sprintf("p%d_", i),
			tableBase: mem.GuestTableBase + uint32(i)*phaseTableStride,
			next:      next,
		})
		if tbl != nil {
			tables = append(tables, tbl)
		}
	}
	img, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", p.name, err)
	}
	for _, tbl := range tables {
		seg, err := tbl.resolve(b)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", p.name, err)
		}
		img.Data = append(img.Data, seg)
	}
	return img, nil
}
