package workload

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/guest"
	"repro/internal/mem"
)

// emitAsPhase emits member as phase `idx` of a composite, preceded by
// the given lead specs, and returns the member's emitted code bytes.
// It mirrors phasedProgram.Build's per-phase emitCtx exactly.
func emitAsPhase(t *testing.T, leads []Spec, member Spec) []byte {
	t.Helper()
	b := guest.NewBuilder()
	b.Label("start")
	for i, lead := range leads {
		if i > 0 {
			b.Label(phaseLabel(i))
		}
		lead.emitInto(b, emitCtx{
			prefix:    fmt.Sprintf("p%d_", i),
			tableBase: mem.GuestTableBase + uint32(i)*phaseTableStride,
			next:      phaseLabel(i + 1),
		})
	}
	idx := len(leads)
	if idx > 0 {
		b.Label(phaseLabel(idx))
	}
	member.emitInto(b, emitCtx{
		prefix:    fmt.Sprintf("p%d_", idx),
		tableBase: mem.GuestTableBase + uint32(idx)*phaseTableStride,
		next:      "",
	})
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	start := uint32(0)
	if idx > 0 {
		addr, ok := b.AddrOf(phaseLabel(idx))
		if !ok {
			t.Fatalf("phase label %q missing", phaseLabel(idx))
		}
		start = addr - mem.GuestCodeBase
	}
	return img.Code[start:]
}

// TestPhasedMemberBytesIndependentOfSiblings is the regression test
// for per-member rand seeding: Spec.emitInto seeds its own
// rand.New(rand.NewSource(s.Seed)) per invocation, so a member's
// emitted instruction bytes must be a pure function of (spec, phase
// slot) — never of which benchmarks ran in the earlier phases or how
// many random draws they consumed. If emission ever started sharing
// generator state across phases, the member bytes after different
// leads would diverge and this test would catch the perturbation.
func TestPhasedMemberBytesIndependentOfSiblings(t *testing.T) {
	member, err := ByName("462.libquantum")
	if err != nil {
		t.Fatal(err)
	}
	member = member.Scale(0.2)
	leadA, err := ByName("401.bzip2")
	if err != nil {
		t.Fatal(err)
	}
	leadB, err := ByName("470.lbm") // different body mix => different draw count
	if err != nil {
		t.Fatal(err)
	}

	afterA := emitAsPhase(t, []Spec{leadA.Scale(0.2)}, member)
	afterB := emitAsPhase(t, []Spec{leadB.Scale(0.2)}, member)

	if !bytes.Equal(afterA, afterB) {
		t.Error("member bytes depend on which benchmark preceded it in the composite")
	}

	// Standalone fingerprint: the member emitted with the same phase-1
	// emitCtx but no preceding phase at all (the slot matters — it
	// selects the jump-table page, a real immediate in the dispatcher;
	// the label prefix does not reach the bytes). In-phase emission
	// must reproduce it exactly.
	b := guest.NewBuilder()
	b.Label("start")
	member.emitInto(b, emitCtx{
		prefix:    "p1_",
		tableBase: mem.GuestTableBase + phaseTableStride,
		next:      "",
	})
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(afterA, img.Code) {
		t.Error("member in-phase bytes differ from its standalone emission under the same emitCtx")
	}
}

// TestPhasedBuildDeterministic pins full-composite determinism: two
// Builds of the same phased program are byte-identical images.
func TestPhasedBuildDeterministic(t *testing.T) {
	specs := make([]Spec, 0, 3)
	for _, n := range []string{"401.bzip2", "462.libquantum", "429.mcf"} {
		s, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s.Scale(0.15))
	}
	p, err := Phased("", specs...)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Code, b.Code) {
		t.Error("phased build is not deterministic")
	}
}
