package workload

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"repro/internal/guest"
)

// The guest-program layer is pluggable: a Program is any named,
// deterministic factory of a guest binary image, and Sources are the
// registry of ways to obtain one — mirroring the tol pass, promotion
// and eviction registries. A workload reference is "<source>:<name>"
// ("synthetic:470.lbm", "file:mybench.json", "trace:run.trace.json",
// "phased:401.bzip2+462.libquantum"); a bare name defaults to the
// synthetic catalog, so every pre-existing benchmark spelling keeps
// working.

// Meta describes a program's provenance and shape for display and
// interchange: which Source produced it, the suite it belongs to (for
// suite-grouped figures; empty when the notion does not apply) and the
// number of execution phases (1 for everything but phased composites).
type Meta struct {
	Source string `json:"source"`
	Suite  string `json:"suite,omitempty"`
	Phases int    `json:"phases,omitempty"`
	// ISA names the guest frontend the program decodes under. Empty
	// means x86 (the pre-frontend default), keeping older serialized
	// metadata valid; consumers resolve it with guest.LookupISA.
	ISA string `json:"isa,omitempty"`
}

// Program is a named, deterministic guest-program factory: building
// twice must yield byte-identical images, the property every
// determinism and memoization guarantee of the controller rests on.
type Program interface {
	Name() string
	Meta() Meta
	Build() (*guest.Program, error)
}

// Scalable is the optional Program extension for workloads whose
// dynamic size can be multiplied without changing their character
// (synthetic specs and phased composites). Trace replays are fixed
// recorded images and deliberately do not implement it.
type Scalable interface {
	Program
	Scale(f float64) Program
}

// Fingerprinter is the optional Program extension reporting a stable
// content identity. The controller folds it into memo-cache keys so
// two programs sharing a benchmark name — e.g. two traces recorded
// from the same benchmark at different scales, or a file: spec named
// after a catalog entry — never alias one cached result.
type Fingerprinter interface {
	Fingerprint() string
}

// Fingerprint returns the program's content identity: the
// Fingerprinter result when implemented, "" otherwise (callers fall
// back to name-based keying, which is only sound for programs whose
// name uniquely determines them).
func Fingerprint(p Program) string {
	if f, ok := p.(Fingerprinter); ok {
		return f.Fingerprint()
	}
	return ""
}

// ScaleProgram applies a dynamic-size factor to a program. Factors 0
// and 1 are identity for every program; any other factor requires the
// program to implement Scalable and errors otherwise, so a -scale flag
// cannot silently be ignored on a trace replay.
func ScaleProgram(p Program, f float64) (Program, error) {
	if f == 0 || f == 1 {
		return p, nil
	}
	if s, ok := p.(Scalable); ok {
		return s.Scale(f), nil
	}
	return nil, fmt.Errorf("workload: %s program %q is a fixed image and cannot be scaled (got scale %g)",
		p.Meta().Source, p.Name(), f)
}

// Source resolves names to Programs under one scheme. Implementations
// register themselves with Register; Open dispatches references to
// them.
type Source interface {
	// Scheme is the reference prefix ("synthetic", "file", "trace",
	// "phased").
	Scheme() string
	// Open resolves the part of the reference after "scheme:".
	Open(name string) (Program, error)
}

// Lister is the optional Source extension for schemes whose program
// set is enumerable (the synthetic catalog).
type Lister interface {
	List() []string
}

var sourceRegistry = map[string]Source{}

// DefaultSource is the scheme assumed by Open for bare references
// without a "scheme:" prefix.
const DefaultSource = "synthetic"

// Register adds a workload source to the registry, making its scheme
// available to Open references. Schemes must be unique, non-empty and
// free of the reference separator; like the tol registries this is
// normally called from an init function, but out-of-tree sources are
// fully supported — Program works on the public guest.Program image,
// unlike the closed tol pass IR.
func Register(s Source) {
	scheme := s.Scheme()
	if scheme == "" || strings.ContainsAny(scheme, ":, \t") {
		panic(fmt.Sprintf("workload: invalid source scheme %q", scheme))
	}
	if _, dup := sourceRegistry[scheme]; dup {
		panic(fmt.Sprintf("workload: duplicate source %q", scheme))
	}
	sourceRegistry[scheme] = s
}

func init() {
	Register(syntheticSource{})
	Register(fileSource{})
	Register(traceSource{})
	Register(phasedSource{})
	Register(fuzzSource{})
	Register(rv32Source{})
}

// Sources returns the registered scheme names, sorted.
func Sources() []string {
	out := make([]string, 0, len(sourceRegistry))
	for scheme := range sourceRegistry {
		out = append(out, scheme)
	}
	sort.Strings(out)
	return out
}

// LookupSource returns the source registered under a scheme.
func LookupSource(scheme string) (Source, bool) {
	s, ok := sourceRegistry[scheme]
	return s, ok
}

// SplitRef splits a workload reference into its scheme and name. A
// bare reference without a separator belongs to DefaultSource, so
// plain catalog names remain valid references.
func SplitRef(ref string) (scheme, name string) {
	if i := strings.IndexByte(ref, ':'); i >= 0 {
		return ref[:i], ref[i+1:]
	}
	return DefaultSource, ref
}

// RefForISA maps a workload reference to the given frontend's catalog:
// synthetic-catalog references (bare names included) are redirected to
// the frontend's own source scheme, so "429.mcf" under ISA "rv32"
// resolves to "rv32:429.mcf". Explicit non-catalog references (trace:,
// file:, ...) pass through unchanged — they name a concrete program,
// and the run's darco.Config ISA pin rejects any frontend mismatch.
func RefForISA(ref, isa string) string {
	if isa == "" || isa == "x86" {
		return ref
	}
	if scheme, name := SplitRef(ref); scheme == DefaultSource {
		return isa + ":" + name
	}
	return ref
}

// Open resolves a "<source>:<name>" workload reference through the
// registry. The name part may itself contain separators (file paths,
// fragment selectors); only the first one delimits the scheme.
func Open(ref string) (Program, error) {
	scheme, name := SplitRef(ref)
	src, ok := sourceRegistry[scheme]
	if !ok {
		return nil, fmt.Errorf("workload: unknown source %q in reference %q (registered: %s)",
			scheme, ref, strings.Join(Sources(), ", "))
	}
	p, err := src.Open(name)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// SpecProgram adapts a synthetic Spec to the Program interface. Source
// records which scheme produced the spec ("synthetic" for catalog
// entries, "file" for JSON-loaded ones); the zero value means
// "synthetic".
type SpecProgram struct {
	Spec   Spec
	Source string
}

// Name returns the spec's benchmark name.
func (p SpecProgram) Name() string { return p.Spec.Name }

// Meta describes the spec's provenance and suite.
func (p SpecProgram) Meta() Meta {
	src := p.Source
	if src == "" {
		src = DefaultSource
	}
	return Meta{Source: src, Suite: p.Spec.Suite.String(), Phases: 1, ISA: p.Spec.ISA}
}

// Build synthesizes the spec's guest program.
func (p SpecProgram) Build() (*guest.Program, error) { return p.Spec.Build() }

// Scale implements Scalable by scaling the underlying spec.
func (p SpecProgram) Scale(f float64) Program {
	return SpecProgram{Spec: p.Spec.Scale(f), Source: p.Source}
}

// Fingerprint hashes the full parameter set: Spec is a pure value
// type, so its rendered form identifies the generated program exactly.
func (p SpecProgram) Fingerprint() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("spec|%+v", p.Spec)))
	return fmt.Sprintf("%x", sum[:8])
}

// syntheticSource resolves catalog benchmark names.
type syntheticSource struct{}

func (syntheticSource) Scheme() string { return "synthetic" }

func (syntheticSource) Open(name string) (Program, error) {
	spec, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return SpecProgram{Spec: spec}, nil
}

// List enumerates the catalog.
func (syntheticSource) List() []string { return Names() }

// funcProgram adapts a bare build closure (tests, examples,
// hand-assembled programs).
type funcProgram struct {
	name  string
	build func() (*guest.Program, error)
}

// Func adapts a name and a deterministic build closure to the Program
// interface — the bridge for callers that assemble guest programs by
// hand rather than through a registered source.
func Func(name string, build func() (*guest.Program, error)) Program {
	return funcProgram{name: name, build: build}
}

func (p funcProgram) Name() string { return p.name }
func (p funcProgram) Meta() Meta   { return Meta{Source: "func", Phases: 1} }
func (p funcProgram) Build() (*guest.Program, error) {
	if p.build == nil {
		return nil, fmt.Errorf("workload: program %q has no build function", p.name)
	}
	return p.build()
}
