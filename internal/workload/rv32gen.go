package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/guest"
	"repro/internal/mem"
)

// RV32I benchmark generator: the same structural knobs as the x86
// generator (cold/warm/hot regions, a jump-table dispatcher, masked or
// hash-indexed data accesses), emitted as real RV32I encodings through
// guest.RV32Builder. FP fractions are rejected by Validate (RV32I has
// no FP); the Irregular hash uses an xorshift mix instead of the x86
// golden-ratio multiply, since RV32I (without the M extension) has no
// multiplier.
//
// Register plan:
//
//	x1  ra (kernel calls, case helper)
//	x2  sp (loader convention; unused by generated code)
//	x5  outer loop counter
//	x6  inner loop counter (kernels, dispatcher)
//	x7  rotating data index
//	x8  data base pointer (never clobbered)
//	x9  dispatcher case index / accumulator
//	x10, x11  scratch for generated bodies
//	x12, x13  address computation scratch
//
// RV32I conditional branches reach only ±4 KiB, so every loop back
// edge and long forward skip goes through the inverted-branch + jal
// idiom (jal reaches ±1 MiB); generated regions can exceed a branch's
// range but not a jump's.

const (
	rvRA    = 1
	rvOuter = 5
	rvInner = 6
	rvIdx   = 7
	rvBase  = 8
	rvCase  = 9
	rvScrA  = 10
	rvScrB  = 11
	rvAddr  = 12
	rvMask  = 13
)

// rv32LoopBack decrements counter and jumps back to target while it is
// still positive, using the long-range idiom.
func rv32LoopBack(b *guest.RV32Builder, counter int, target string) {
	done := fmt.Sprintf("%s_done_%d", target, b.InstCount())
	b.Addi(counter, counter, -1)
	b.Bge(0, counter, done) // counter <= 0: fall out of the loop
	b.Jal(0, target)
	b.Label(done)
}

// buildRV32 synthesizes the RV32I form of the spec.
func (s Spec) buildRV32() (*guest.Program, error) {
	r := rand.New(rand.NewSource(s.Seed))
	b := guest.NewRV32Builder()
	lbl := func(name string) string { return name }

	b.Li(rvBase, int32(mem.GuestDataBase))
	b.Li(rvIdx, 0)
	b.Li(rvCase, 0)
	b.Li(rvScrA, int32(r.Uint32()))
	b.Li(rvScrB, int32(r.Uint32()))

	// Cold one-shot blocks, separated by jumps like the x86 generator.
	for c := 0; c < s.ColdBlocks; c++ {
		s.emitRV32Body(b, r, s.ColdLen, 0.3)
		b.Jal(0, lbl(fmt.Sprintf("cold%d", c)))
		b.Label(lbl(fmt.Sprintf("cold%d", c)))
	}

	// Warm-region countdown in memory at Footprint+64 (past the
	// working set, clear of the jump tables — same slot as x86).
	warmCount := int32(s.Footprint + 64)
	warmAddr := func() { // rvAddr = &counter
		b.Li(rvAddr, warmCount)
		b.Add(rvAddr, rvAddr, rvBase)
	}
	b.Li(rvScrA, int32(s.WarmIters))
	warmAddr()
	b.Sw(rvScrA, rvAddr, 0)

	b.Li(rvOuter, int32(s.OuterIters))
	b.Label(lbl("outer"))

	// Hot kernels.
	for k := 0; k < s.HotKernels; k++ {
		if s.UseCalls {
			b.Jal(rvRA, lbl(fmt.Sprintf("kernel%d", k)))
		} else {
			b.Li(rvInner, int32(s.KernelIter))
			b.Label(lbl(fmt.Sprintf("kloop%d", k)))
			s.emitRV32Body(b, r, s.KernelLen, s.MemFrac)
			b.Addi(rvIdx, rvIdx, 1)
			rv32LoopBack(b, rvInner, lbl(fmt.Sprintf("kloop%d", k)))
		}
	}

	// Warm region: executed only while its countdown is positive.
	if s.WarmBlocks > 0 {
		warmAddr()
		b.Lw(rvScrA, rvAddr, 0)
		b.Blt(0, rvScrA, lbl("warmgo")) // counter > 0: run the region
		b.Jal(0, lbl("warmskip"))
		b.Label(lbl("warmgo"))
		b.Addi(rvScrA, rvScrA, -1)
		b.Sw(rvScrA, rvAddr, 0)
		for w := 0; w < s.WarmBlocks; w++ {
			s.emitRV32Body(b, r, s.WarmLen, 0.3)
			b.Jal(0, lbl(fmt.Sprintf("warm%d", w)))
			b.Label(lbl(fmt.Sprintf("warm%d", w)))
		}
		b.Label(lbl("warmskip"))
	}

	// Dispatcher: indirect jumps (jalr x0) through a jump table.
	if s.Fanout > 0 && s.DispatchIters > 0 {
		b.Li(rvInner, int32(s.DispatchIters))
		b.Label(lbl("dispatch"))
		b.Li(rvScrA, int32(mem.GuestTableBase))
		b.Slli(rvAddr, rvCase, 2)
		b.Add(rvScrA, rvScrA, rvAddr)
		b.Lw(rvScrA, rvScrA, 0)
		b.Jalr(0, rvScrA, 0)
		for c := 0; c < s.Fanout; c++ {
			b.Label(lbl(fmt.Sprintf("case%d", c)))
			s.emitRV32Body(b, r, 4+c%5, 0.25)
			if s.CaseCalls {
				b.Jal(rvRA, lbl("casehelper"))
			}
			b.Jal(0, lbl("dispjoin"))
		}
		b.Label(lbl("dispjoin"))
		b.Addi(rvCase, rvCase, 1)
		b.Li(rvAddr, int32(s.Fanout))
		b.Blt(rvCase, rvAddr, lbl("dispnowrap"))
		b.Li(rvCase, 0)
		b.Label(lbl("dispnowrap"))
		rv32LoopBack(b, rvInner, lbl("dispatch"))
	}

	rv32LoopBack(b, rvOuter, lbl("outer"))
	b.Ebreak()

	// Kernel bodies as functions.
	if s.UseCalls {
		for k := 0; k < s.HotKernels; k++ {
			b.Label(lbl(fmt.Sprintf("kernel%d", k)))
			b.Li(rvInner, int32(s.KernelIter))
			b.Label(lbl(fmt.Sprintf("kbody%d", k)))
			s.emitRV32Body(b, r, s.KernelLen, s.MemFrac)
			b.Addi(rvIdx, rvIdx, 1)
			rv32LoopBack(b, rvInner, lbl(fmt.Sprintf("kbody%d", k)))
			b.Jalr(0, rvRA, 0) // ret
		}
	}
	if s.Fanout > 0 && s.CaseCalls {
		b.Label(lbl("casehelper"))
		s.emitRV32Body(b, r, 5, 0.3)
		b.Jalr(0, rvRA, 0)
	}

	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", s.Name, err)
	}

	// Jump table data (case addresses are exact under the fixed-width
	// encoding, no post-layout resolution pass needed).
	if s.Fanout > 0 {
		raw := make([]byte, 4*s.Fanout)
		for c := 0; c < s.Fanout; c++ {
			a, ok := b.AddrOf(lbl(fmt.Sprintf("case%d", c)))
			if !ok {
				return nil, fmt.Errorf("workload %s: case label %d missing", s.Name, c)
			}
			raw[4*c+0] = byte(a)
			raw[4*c+1] = byte(a >> 8)
			raw[4*c+2] = byte(a >> 16)
			raw[4*c+3] = byte(a >> 24)
		}
		p.Data = append(p.Data, guest.DataSeg{Addr: mem.GuestTableBase, Bytes: raw})
	}
	return p, nil
}

// emitRV32Body is the RV32I analog of emitBody: n mostly-straight-line
// instructions mixing integer ALU and memory operations with short
// forward conditional branches, touching data through rvBase+masked
// index. Only the scratch registers are clobbered.
func (s Spec) emitRV32Body(b *guest.RV32Builder, r *rand.Rand, n int, memFrac float64) {
	brFrac := s.BranchFrac
	mask := int32(1024 - 1)
	if s.Footprint > 0 {
		mask = int32(s.Footprint - 1)
	}
	stride := int32(4)
	if s.Stride != 0 {
		stride = int32(s.Stride)
	}
	for i := 0; i < n; i++ {
		x := r.Float64()
		switch {
		case x < brFrac:
			// Short forward skip over two instructions, direction
			// data-dependent.
			l := fmt.Sprintf("skip_%d", b.InstCount())
			switch r.Intn(4) {
			case 0:
				b.Beq(rvScrA, 0, l)
			case 1:
				b.Bne(rvScrA, 0, l)
			case 2:
				b.Blt(rvScrA, 0, l)
			default:
				b.Bge(rvScrA, 0, l)
			}
			b.Addi(rvScrB, rvScrB, int32(r.Intn(64)))
			b.Xor(rvScrA, rvScrA, rvScrB)
			b.Label(l)
			i += 3
		case x < brFrac+memFrac:
			if s.Irregular {
				// Hash-indexed access via an xorshift mix of the index
				// (RV32I has no multiplier for the x86 generator's
				// golden-ratio hash); defeats the stride prefetcher the
				// same way.
				b.Addi(rvAddr, rvIdx, int32(r.Intn(2048)))
				b.Slli(rvMask, rvAddr, 13)
				b.Xor(rvAddr, rvAddr, rvMask)
				b.Srli(rvMask, rvAddr, 7)
				b.Xor(rvAddr, rvAddr, rvMask)
				b.Li(rvMask, mask&^3)
				b.And(rvAddr, rvAddr, rvMask)
				b.Add(rvAddr, rvAddr, rvBase)
				if r.Intn(2) == 0 {
					b.Lw(rvScrB, rvAddr, 0)
				} else {
					b.Li(rvScrB, int32(r.Uint32()))
					b.Sw(rvScrB, rvAddr, 0)
					i++
				}
				i += 7
			} else {
				// Masked strided access: rvAddr = base + ((idx << log2
				// stride) & mask).
				b.Slli(rvAddr, rvIdx, log2i(stride))
				b.Li(rvMask, mask&^3)
				b.And(rvAddr, rvAddr, rvMask)
				b.Add(rvAddr, rvAddr, rvBase)
				if r.Intn(2) == 0 {
					b.Lw(rvScrB, rvAddr, 0)
				} else {
					b.Sw(rvScrB, rvAddr, 0)
				}
				i += 4
			}
		default:
			switch r.Intn(8) {
			case 0:
				b.Add(rvScrA, rvScrA, rvScrB)
			case 1:
				b.Addi(rvScrB, rvScrB, -int32(r.Intn(100)))
			case 2:
				b.Xor(rvScrA, rvScrA, rvScrB)
			case 3:
				b.Slli(rvScrA, rvScrA, int32(1+r.Intn(7)))
			case 4:
				b.Addi(rvScrB, rvScrA, 0) // mv
			case 5:
				b.Andi(rvScrA, rvScrA, int32(r.Intn(2048)))
			case 6:
				b.Addi(rvScrB, rvScrB, 1)
			default:
				b.Or(rvScrB, rvScrB, rvScrA)
			}
		}
	}
}

// rv32CatalogNames is the starter RV32I catalog: the subset of the
// synthetic catalog ported to the RV32I frontend (integer-flavored
// entries; FP fractions are cleared in the port since RV32I has no
// FP). The set deliberately includes the indirect-branch outlier
// (400.perlbench) so the IBTC path is exercised under the second
// frontend.
var rv32CatalogNames = []string{
	"400.perlbench",
	"401.bzip2",
	"429.mcf",
	"458.sjeng",
	"462.libquantum",
	"998.specrand",
}

// RV32Catalog returns the RV32I starter catalog specs.
func RV32Catalog() []Spec {
	out := make([]Spec, 0, len(rv32CatalogNames))
	for _, name := range rv32CatalogNames {
		s, err := ByName(name)
		if err != nil {
			panic(fmt.Sprintf("workload: rv32 catalog references unknown benchmark %q", name))
		}
		out = append(out, rv32Port(s))
	}
	return out
}

// rv32Port converts a catalog spec to its RV32I form.
func rv32Port(s Spec) Spec {
	s.ISA = "rv32"
	s.FPFrac = 0 // RV32I has no FP
	return s
}

// rv32Source resolves "rv32:<name>" references to the RV32I port of a
// starter-catalog benchmark. The program keeps the benchmark's name —
// "synthetic:429.mcf" and "rv32:429.mcf" are the same benchmark under
// two frontends — so results land on the same figure rows; memo and
// store keys disambiguate via Meta.ISA and the spec fingerprint.
type rv32Source struct{}

func (rv32Source) Scheme() string { return "rv32" }

func (rv32Source) Open(name string) (Program, error) {
	for _, n := range rv32CatalogNames {
		if n == name {
			s, err := ByName(name)
			if err != nil {
				return nil, err
			}
			return SpecProgram{Spec: rv32Port(s), Source: "rv32"}, nil
		}
	}
	return nil, fmt.Errorf("workload: rv32 source: %q is not in the RV32I starter catalog (have: %v)",
		name, rv32CatalogNames)
}

// List enumerates the RV32I starter catalog.
func (rv32Source) List() []string {
	out := append([]string(nil), rv32CatalogNames...)
	sort.Strings(out)
	return out
}
