package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/x86emu"
)

// imageHash fingerprints a built guest image: code, data segments,
// entry point and static instruction count.
func imageHash(t *testing.T, p Program) string {
	t.Helper()
	img, err := p.Build()
	if err != nil {
		t.Fatalf("%s: build: %v", p.Name(), err)
	}
	h := sha256.New()
	h.Write(img.Code)
	for _, seg := range img.Data {
		fmt.Fprintf(h, "|%d:", seg.Addr)
		h.Write(seg.Bytes)
	}
	return fmt.Sprintf("%x|entry=%x|static=%d", h.Sum(nil), img.Entry, img.StaticInst)
}

// TestCatalogMemoized verifies the memoized catalog hands out
// independent copies: mutating one caller's slice must not leak into
// later lookups, and repeated calls must agree entry by entry.
func TestCatalogMemoized(t *testing.T) {
	c1 := Catalog()
	orig := c1[0]
	c1[0].Name = "mutated"
	c1[0].HotKernels = -99
	c2 := Catalog()
	if c2[0].Name != orig.Name || c2[0].HotKernels != orig.HotKernels {
		t.Fatalf("catalog copy aliased: %+v", c2[0])
	}
	if !reflect.DeepEqual(c2, Catalog()) {
		t.Fatal("catalog not stable across calls")
	}
	got, err := ByName(orig.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Fatalf("ByName(%s) disagrees with catalog entry", orig.Name)
	}
	if _, err := ByName("mutated"); err == nil {
		t.Fatal("mutation leaked into the name index")
	}
}

// TestCatalogInvariants checks unique names, stable order, and that
// every entry builds deterministically: the same Spec must produce an
// identical guest image hash on every Build.
func TestCatalogInvariants(t *testing.T) {
	names1, names2 := Names(), Names()
	if !reflect.DeepEqual(names1, names2) {
		t.Fatal("catalog order not stable")
	}
	seen := map[string]bool{}
	for _, n := range names1 {
		if seen[n] {
			t.Errorf("duplicate benchmark name %q", n)
		}
		seen[n] = true
	}
	for _, s := range Catalog() {
		p := SpecProgram{Spec: s}
		if h1, h2 := imageHash(t, p), imageHash(t, p); h1 != h2 {
			t.Errorf("%s: non-deterministic build: %s vs %s", s.Name, h1, h2)
		}
	}
}

func TestParseSuiteRoundTrip(t *testing.T) {
	for _, su := range Suites() {
		got, err := ParseSuite(su.String())
		if err != nil {
			t.Errorf("ParseSuite(%q): %v", su.String(), err)
		}
		if got != su {
			t.Errorf("ParseSuite(%q) = %v, want %v", su.String(), got, su)
		}
	}
	for alias, want := range map[string]Suite{
		"int": SPECInt, "FP": SPECFP, "physics": Physics, "MEDIA": Media,
	} {
		if got, err := ParseSuite(alias); err != nil || got != want {
			t.Errorf("ParseSuite(%q) = %v, %v; want %v", alias, got, err, want)
		}
	}
	if _, err := ParseSuite("nope"); err == nil {
		t.Error("unknown suite accepted")
	}
}

func TestSuiteJSONRoundTrip(t *testing.T) {
	spec, err := ByName("470.lbm")
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{spec}
	data, err := json.Marshal(specs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"SPEC-FP"`)) {
		t.Fatalf("suite not encoded as name: %s", data)
	}
	back, err := DecodeSpecs(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, specs) {
		t.Fatalf("spec JSON round-trip mismatch:\n got %+v\nwant %+v", back[0], spec)
	}
}

// TestOpenReferences covers the reference grammar: explicit scheme,
// bare catalog name, unknown scheme, unknown benchmark.
func TestOpenReferences(t *testing.T) {
	p, err := Open("synthetic:401.bzip2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "401.bzip2" || p.Meta().Source != "synthetic" {
		t.Fatalf("got %s/%s", p.Name(), p.Meta().Source)
	}
	bare, err := Open("401.bzip2")
	if err != nil {
		t.Fatal(err)
	}
	if imageHash(t, bare) != imageHash(t, p) {
		t.Fatal("bare reference differs from explicit synthetic:")
	}
	if _, err := Open("nope:x"); err == nil || !strings.Contains(err.Error(), "unknown source") {
		t.Fatalf("unknown scheme: %v", err)
	}
	if _, err := Open("synthetic:nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	for _, want := range []string{"synthetic", "file", "trace", "phased"} {
		if _, ok := LookupSource(want); !ok {
			t.Errorf("source %q not registered", want)
		}
	}
}

func TestScaleProgram(t *testing.T) {
	p, err := Open("401.bzip2")
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := ScaleProgram(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := scaled.(SpecProgram).Spec.OuterIters; got != p.(SpecProgram).Spec.OuterIters*2 {
		t.Fatalf("scale not applied: %d", got)
	}
	tr, err := NewTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScaleProgram(tr.Program(), 2); err == nil {
		t.Fatal("trace program accepted a scale factor")
	}
	if same, err := ScaleProgram(tr.Program(), 1); err != nil || same == nil {
		t.Fatalf("identity scale rejected: %v", err)
	}
}

// TestFileSource loads specs from single-object and multi-spec JSON
// files, including fragment selection and typo rejection.
func TestFileSource(t *testing.T) {
	dir := t.TempDir()
	spec, err := ByName("462.libquantum")
	if err != nil {
		t.Fatal(err)
	}
	spec.Name = "custom.one"
	one := filepath.Join(dir, "one.json")
	// Single-spec files hold a bare object.
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(one, data, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Open("file:" + one)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "custom.one" || p.Meta().Source != "file" {
		t.Fatalf("got %s/%s", p.Name(), p.Meta().Source)
	}
	direct := SpecProgram{Spec: spec}
	if imageHash(t, p) != imageHash(t, direct) {
		t.Fatal("file-loaded spec builds a different image than the in-memory spec")
	}

	spec2 := spec
	spec2.Name = "custom.two"
	many := filepath.Join(dir, "many.json")
	data, err = json.Marshal([]Spec{spec, spec2})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(many, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open("file:" + many); err == nil {
		t.Fatal("ambiguous multi-spec file accepted without a fragment")
	}
	p2, err := Open("file:" + many + "#custom.two")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Name() != "custom.two" {
		t.Fatalf("fragment selected %s", p2.Name())
	}
	if _, err := Open("file:" + many + "#absent"); err == nil {
		t.Fatal("missing fragment accepted")
	}

	typo := filepath.Join(dir, "typo.json")
	if err := os.WriteFile(typo, []byte(`{"Name":"x","HotKernelz":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open("file:" + typo); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestTraceRoundTrip is the record→replay golden test: serializing a
// recorded trace and replaying it through ReadTrace must rebuild the
// guest image byte-identically, repeatedly.
func TestTraceRoundTrip(t *testing.T) {
	p, err := Open("400.perlbench")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != p.Name() || back.Source != "synthetic" || back.Suite != "SPEC-INT" {
		t.Fatalf("trace metadata: %+v", back)
	}
	want := imageHash(t, p)
	if got := imageHash(t, back.Program()); got != want {
		t.Fatalf("replayed image differs:\n got %s\nwant %s", got, want)
	}
	// Replays are repeatable and isolated: mutating one build's image
	// must not perturb the next.
	img1, err := back.Program().Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := range img1.Code {
		img1.Code[i] = 0xFF
	}
	if got := imageHash(t, back.Program()); got != want {
		t.Fatal("replayed image shares bytes with a previous build")
	}
	// A foreign format is rejected.
	tr2 := *back
	tr2.Format = "darco-trace/999"
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, &tr2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf2); err == nil {
		t.Fatal("wrong format accepted")
	}
}

// TestPhasedProgram builds a composite, checks its shape, and runs it
// to completion on the reference emulator: every phase must execute
// and the single final halt must be reached.
func TestPhasedProgram(t *testing.T) {
	p, err := Open("phased:401.bzip2+462.libquantum+429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "401.bzip2+462.libquantum+429.mcf" {
		t.Fatalf("name %q", p.Name())
	}
	meta := p.Meta()
	if meta.Source != "phased" || meta.Phases != 3 {
		t.Fatalf("meta %+v", meta)
	}
	scaled, err := ScaleProgram(p, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	img, err := scaled.(Program).Build()
	if err != nil {
		t.Fatal(err)
	}
	// The composite must be roughly the member sum in static size and
	// strictly larger than any single member.
	single, err := ByName("401.bzip2")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := single.Scale(0.1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if img.StaticInst <= sp.StaticInst {
		t.Fatalf("composite static %d not larger than member %d", img.StaticInst, sp.StaticInst)
	}
	e := x86emu.New(img)
	if err := e.Run(200_000_000); err != nil {
		t.Fatalf("phased run: %v", err)
	}
	// Dynamic size must exceed the first member alone: later phases ran.
	es := x86emu.New(sp)
	if err := es.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if e.DynInsts <= es.DynInsts {
		t.Fatalf("composite dyn %d not larger than first member %d", e.DynInsts, es.DynInsts)
	}
	if _, err := Open("phased:401.bzip2+nope"); err == nil {
		t.Fatal("unknown member accepted")
	}
}

// TestPhasedDispatcherTablesDistinct ensures members with dispatchers
// get disjoint jump-table pages (the indirect-branch targets of phase
// i must not alias phase j's).
func TestPhasedDispatcherTablesDistinct(t *testing.T) {
	p, err := Open("phased:400.perlbench+471.omnetpp")
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := ScaleProgram(p, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	img, err := scaled.(Program).Build()
	if err != nil {
		t.Fatal(err)
	}
	var addrs []uint32
	for _, seg := range img.Data {
		addrs = append(addrs, seg.Addr)
	}
	if len(addrs) != 2 {
		t.Fatalf("want 2 jump tables, got %d (%v)", len(addrs), addrs)
	}
	if addrs[0] == addrs[1] {
		t.Fatalf("jump tables alias at 0x%x", addrs[0])
	}
	e := x86emu.New(img)
	if err := e.Run(200_000_000); err != nil {
		t.Fatalf("dispatcher composite run: %v", err)
	}
	if e.DynIndirect == 0 {
		t.Fatal("no indirect branches executed")
	}
}

// TestFuncProgram covers the closure adapter.
func TestFuncProgram(t *testing.T) {
	p := Func("tiny", func() (*guest.Program, error) {
		b := guest.NewBuilder()
		b.MovRI(guest.EAX, 1)
		b.Halt()
		return b.Build()
	})
	if p.Name() != "tiny" || p.Meta().Source != "func" {
		t.Fatalf("func program: %s/%s", p.Name(), p.Meta().Source)
	}
	if _, err := p.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := Func("none", nil).Build(); err == nil {
		t.Fatal("nil build accepted")
	}
}

// TestValidateBoundsFileSpecs covers the ranges Validate enforces now
// that specs arrive from arbitrary JSON: a footprint large enough to
// overlap the jump-table region, and negative counts, must be
// rejected before they can build a self-corrupting program.
func TestValidateBoundsFileSpecs(t *testing.T) {
	base, err := ByName("401.bzip2")
	if err != nil {
		t.Fatal(err)
	}
	huge := base
	huge.Footprint = 1 << 24 // power of two, but overlaps GuestTableBase
	if err := huge.Validate(); err == nil {
		t.Error("oversized footprint accepted")
	}
	atLimit := base
	atLimit.Footprint = MaxFootprint
	if err := atLimit.Validate(); err != nil {
		t.Errorf("footprint at the limit rejected: %v", err)
	}
	neg := base
	neg.HotKernels = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative HotKernels accepted")
	}
	frac := base
	frac.MemFrac = 1.5
	if err := frac.Validate(); err == nil {
		t.Error("MemFrac > 1 accepted")
	}
}
