package workload

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/guest"
	"repro/internal/mem"
)

// The trace source implements record/replay: recording captures a
// program's guest binary image and entry state into a JSON file, and
// replay rebuilds that image byte-identically. Because the co-design
// engine is fully deterministic, a replayed image produces the exact
// same tol.Stats as the program it was recorded from under any given
// configuration — which is what makes recorded traces the stable input
// of cross-configuration sweeps (record once, replay under every
// -cc-size/-O point) and of regression pinning across refactors.
//
//	darco -bench 470.lbm -record lbm.trace.json   # record
//	darco -workload trace:lbm.trace.json          # replay

// TraceFormat identifies the trace file format; ReadTrace rejects
// files carrying any other format string.
const TraceFormat = "darco-trace/1"

// TraceSeg is one initialized data segment of a recorded image. Bytes
// marshals as base64, the encoding/json default.
type TraceSeg struct {
	Addr  uint32 `json:"addr"`
	Bytes []byte `json:"bytes"`
}

// Trace is a recorded guest program: the byte-exact binary image plus
// the entry point it starts from. The remaining entry state is fixed
// by the loader convention (EIP = Entry, ESP = mem.GuestStackTop, all
// other registers zero), so the image and entry point fully determine
// the run's input.
type Trace struct {
	Format string `json:"format"`
	// Name is the replayed program's benchmark name (the recorded
	// program's name), so replay results land on the same rows and
	// preload keys as the original.
	Name string `json:"name"`
	// Source and Suite record the provenance of the recorded program.
	Source string `json:"recorded_source,omitempty"`
	Suite  string `json:"suite,omitempty"`
	// ISA names the guest frontend the recorded image decodes under.
	// Empty means x86, so traces recorded before the second frontend
	// replay unchanged. Replay refuses a trace whose ISA is not
	// registered — the image's encodings would be misdecoded.
	ISA        string     `json:"isa,omitempty"`
	Entry      uint32     `json:"entry"`
	StaticInst int        `json:"static_inst"`
	Code       []byte     `json:"code"`
	Data       []TraceSeg `json:"data,omitempty"`
}

// NewTrace builds the program once and captures its image.
func NewTrace(p Program) (*Trace, error) {
	img, err := p.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: recording %s: %w", p.Name(), err)
	}
	meta := p.Meta()
	t := &Trace{
		Format:     TraceFormat,
		Name:       p.Name(),
		Source:     meta.Source,
		Suite:      meta.Suite,
		ISA:        img.ISA,
		Entry:      img.Entry,
		StaticInst: img.StaticInst,
		Code:       append([]byte(nil), img.Code...),
	}
	for _, seg := range img.Data {
		t.Data = append(t.Data, TraceSeg{Addr: seg.Addr, Bytes: append([]byte(nil), seg.Bytes...)})
	}
	return t, nil
}

// Validate checks the structural invariants of a decoded trace.
func (t *Trace) Validate() error {
	if t.Format != TraceFormat {
		return fmt.Errorf("workload: trace format %q, want %q", t.Format, TraceFormat)
	}
	if t.Name == "" {
		return fmt.Errorf("workload: trace has no name")
	}
	if _, err := guest.LookupISA(t.ISA); err != nil {
		return fmt.Errorf("workload: trace %s: %w (replay would misdecode the image)", t.Name, err)
	}
	if len(t.Code) == 0 || t.StaticInst <= 0 {
		return fmt.Errorf("workload: trace %s has an empty code image", t.Name)
	}
	if t.Entry < mem.GuestCodeBase || t.Entry >= mem.GuestCodeBase+uint32(len(t.Code)) {
		return fmt.Errorf("workload: trace %s entry 0x%x outside its code image", t.Name, t.Entry)
	}
	return nil
}

// Program returns the replay program that rebuilds the recorded image
// byte-identically on every Build.
func (t *Trace) Program() Program { return traceProgram{t} }

// WriteTrace serializes a trace as indented JSON.
func WriteTrace(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTrace decodes and validates a trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// RecordTrace captures a program's image into a trace file.
func RecordTrace(path string, p Program) error {
	t, err := NewTrace(p)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTrace reads a trace file.
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: trace source: %w", err)
	}
	defer f.Close()
	t, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("workload: trace %s: %w", path, err)
	}
	return t, nil
}

// traceProgram replays a recorded image. It is deliberately not
// Scalable: the image is fixed.
type traceProgram struct {
	t *Trace
}

func (p traceProgram) Name() string { return p.t.Name }

func (p traceProgram) Meta() Meta {
	return Meta{Source: "trace", Suite: p.t.Suite, Phases: 1, ISA: p.t.ISA}
}

// Fingerprint hashes the recorded image, so two traces sharing a
// benchmark name (e.g. recorded at different scales) key differently
// in the controller's memo cache.
func (p traceProgram) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "trace|%x|%d|", p.t.Entry, p.t.StaticInst)
	if p.t.ISA != "" {
		// Folded in only when set so x86 traces (ISA empty) keep the
		// fingerprints persisted stores already key on.
		fmt.Fprintf(h, "isa=%s|", p.t.ISA)
	}
	h.Write(p.t.Code)
	for _, seg := range p.t.Data {
		fmt.Fprintf(h, "|%d:", seg.Addr)
		h.Write(seg.Bytes)
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// Build rebuilds the recorded image. The returned program carries
// fresh copies of the code and data bytes, so no caller can perturb
// the recording between replays.
func (p traceProgram) Build() (*guest.Program, error) {
	img := &guest.Program{
		Entry:      p.t.Entry,
		Code:       append([]byte(nil), p.t.Code...),
		StaticInst: p.t.StaticInst,
		ISA:        p.t.ISA,
	}
	for _, seg := range p.t.Data {
		img.Data = append(img.Data, guest.DataSeg{Addr: seg.Addr, Bytes: append([]byte(nil), seg.Bytes...)})
	}
	return img, nil
}

// traceSource resolves trace file paths.
type traceSource struct{}

func (traceSource) Scheme() string { return "trace" }

func (traceSource) Open(name string) (Program, error) {
	t, err := LoadTrace(name)
	if err != nil {
		return nil, err
	}
	return t.Program(), nil
}
