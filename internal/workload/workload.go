// Package workload provides the guest programs used to characterize
// TOL, behind a pluggable Program interface with a Source registry
// (see program.go): synthetic: generates the 48-benchmark catalog,
// file: loads spec definitions from JSON, trace: records and replays
// exact guest images, and phased: composes members into multi-phase
// programs. This file is the synthetic generator.
//
// Real SPEC CPU2006 / Mediabench / Physicsbench x86 binaries are not
// available to this reproduction (see DESIGN.md), so each benchmark is
// synthesized from the structural characteristics the paper identifies
// as the drivers of every result: static code size, dynamic/static
// instruction ratio (and its closeness to the promotion threshold),
// indirect-branch density, instruction mix (INT vs FP), call
// behaviour, and memory footprint.
//
// A generated benchmark has four kinds of code:
//
//   - cold blocks: executed once (initialization) — they stay in IM;
//   - warm blocks: executed a handful of times around IM/BBth — they
//     reach BBM at most;
//   - hot kernels: loops executed far beyond BB/SBth — they are the
//     code SBM optimizes;
//   - a dispatcher: a jump-table loop generating indirect branches at
//     a controlled rate, plus calls/returns.
package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/guest"
	"repro/internal/mem"
)

// Suite labels mirror the paper's benchmark suites.
type Suite uint8

// Suites.
const (
	SPECInt Suite = iota
	SPECFP
	Physics
	Media
)

var suiteNames = [...]string{"SPEC-INT", "SPEC-FP", "Physicsbench", "Mediabench"}

func (s Suite) String() string {
	if int(s) < len(suiteNames) {
		return suiteNames[s]
	}
	return "suite?"
}

// Suites lists all suites in the paper's order.
func Suites() []Suite {
	return []Suite{SPECInt, SPECFP, Physics, Media}
}

// ParseSuite is the inverse of Suite.String. It accepts the display
// names case-insensitively plus the short aliases the command-line
// tools use (int, fp, physics, media), so ParseSuite(s.String()) == s
// for every suite.
func ParseSuite(name string) (Suite, error) {
	switch strings.ToLower(name) {
	case "int", "spec-int":
		return SPECInt, nil
	case "fp", "spec-fp":
		return SPECFP, nil
	case "physics", "physicsbench":
		return Physics, nil
	case "media", "mediabench":
		return Media, nil
	}
	return 0, fmt.Errorf("workload: unknown suite %q (want int, fp, physics or media)", name)
}

// MarshalJSON encodes the suite as its display name, so file: specs
// read naturally ("Suite": "SPEC-INT") instead of as a bare enum value.
func (s Suite) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts a suite name (any spelling ParseSuite takes)
// or a legacy numeric value.
func (s *Suite) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var name string
		if err := json.Unmarshal(b, &name); err != nil {
			return err
		}
		su, err := ParseSuite(name)
		if err != nil {
			return err
		}
		*s = su
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*s = Suite(n)
	return nil
}

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	Name  string
	Suite Suite
	Seed  int64

	// ISA selects the guest frontend the program is generated for:
	// "" or "x86" (the default x86 generator) or "rv32" (the RV32I
	// generator in rv32gen.go). The same structural knobs drive both,
	// so one spec describes the benchmark across frontends.
	ISA string `json:",omitempty"`

	// Hot kernels (SBM-bound code).
	HotKernels int // number of distinct hot loops
	KernelLen  int // straight-line guest instructions per kernel body
	KernelIter int // loop iterations per kernel invocation

	// Outer structure.
	OuterIters int // repetitions of the whole phase sequence

	// Cold and warm code (IM / BBM-bound).
	ColdBlocks int // one-shot initialization blocks
	ColdLen    int
	WarmBlocks int // blocks executed WarmIters times in total
	WarmLen    int
	WarmIters  int // executions of the warm region (IM/BBth ballpark keeps it BBM)

	// Indirect control flow.
	Fanout        int  // jump-table cases in the dispatcher (0 disables)
	DispatchIters int  // dispatcher iterations per outer iteration
	UseCalls      bool // hot kernels invoked via call/ret
	CaseCalls     bool // dispatcher cases call a helper (adds one
	// distinct return target per case, widening the indirect-target set)

	// Instruction mix and memory behaviour of kernels.
	FPFrac     float64 // fraction of FP operations in kernel bodies
	MemFrac    float64 // fraction of memory operations in kernel bodies
	BranchFrac float64 // fraction of short forward conditional branches
	// Footprint is the data working set in bytes (power of two).
	Footprint int
	// Stride is the access stride in bytes within the working set.
	Stride int
	// Irregular makes kernel data accesses hash-indexed instead of
	// strided (pointer-chasing-like), defeating the stride prefetcher —
	// the access behaviour of perlbench/mcf-class applications.
	Irregular bool
}

// MaxFootprint bounds a spec's data working set. The guest data
// region spans mem.GuestDataBase to mem.GuestTableBase (16 MiB); the
// bound keeps the footprint plus the warm-region counter behind it
// clear of the jump tables, so a file:-loaded spec cannot define a
// program whose data accesses silently corrupt its own dispatcher.
const MaxFootprint = 1 << 23

// Validate checks spec consistency. Specs now also arrive from
// outside the vetted catalog (the file: source decodes arbitrary
// JSON), so ranges are enforced, not assumed.
func (s *Spec) Validate() error {
	switch s.ISA {
	case "", "x86":
	case "rv32":
		// The RV32I frontend has no FP encodings; a spec asking for FP
		// operations under it cannot be generated faithfully.
		if s.FPFrac != 0 {
			return fmt.Errorf("workload %s: FPFrac %g under ISA rv32 (RV32I has no FP)", s.Name, s.FPFrac)
		}
	default:
		return fmt.Errorf("workload %s: unknown ISA %q (want x86 or rv32)", s.Name, s.ISA)
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"HotKernels", s.HotKernels}, {"KernelLen", s.KernelLen},
		{"KernelIter", s.KernelIter}, {"OuterIters", s.OuterIters},
		{"ColdBlocks", s.ColdBlocks}, {"ColdLen", s.ColdLen},
		{"WarmBlocks", s.WarmBlocks}, {"WarmLen", s.WarmLen},
		{"WarmIters", s.WarmIters}, {"Fanout", s.Fanout},
		{"DispatchIters", s.DispatchIters}, {"Footprint", s.Footprint},
		{"Stride", s.Stride},
	} {
		if f.v < 0 {
			return fmt.Errorf("workload %s: negative %s %d", s.Name, f.name, f.v)
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"FPFrac", s.FPFrac}, {"MemFrac", s.MemFrac}, {"BranchFrac", s.BranchFrac},
	} {
		if f.v < 0 || f.v > 1 || f.v != f.v {
			return fmt.Errorf("workload %s: %s %g outside [0,1]", s.Name, f.name, f.v)
		}
	}
	if s.Footprint != 0 && s.Footprint&(s.Footprint-1) != 0 {
		return fmt.Errorf("workload %s: footprint %d not a power of two", s.Name, s.Footprint)
	}
	if s.Footprint > MaxFootprint {
		return fmt.Errorf("workload %s: footprint %d exceeds MaxFootprint (%d)", s.Name, s.Footprint, MaxFootprint)
	}
	if s.Fanout > 64 {
		return fmt.Errorf("workload %s: fanout %d > 64", s.Name, s.Fanout)
	}
	if s.Stride != 0 && s.Stride&(s.Stride-1) != 0 {
		return fmt.Errorf("workload %s: stride %d not a power of two", s.Name, s.Stride)
	}
	// The three fractions partition the kernel body; a sum over 1 would
	// silently skew emitBody's distribution (branches eat the memory
	// share first, then FP). Exactly 1 is a valid all-special-ops body.
	if sum := s.FPFrac + s.MemFrac + s.BranchFrac; sum > 1 {
		return fmt.Errorf("workload %s: FPFrac+MemFrac+BranchFrac = %g > 1", s.Name, sum)
	}
	// The outer loop and kernel loops are do-while shaped: a zero count
	// still executes the body once, which is never what a spec author
	// meant and (for the outer loop) breaks Scale's proportionality.
	if s.OuterIters == 0 {
		return fmt.Errorf("workload %s: OuterIters must be >= 1 (the outer loop is do-while shaped)", s.Name)
	}
	if s.HotKernels > 0 && s.KernelIter == 0 {
		return fmt.Errorf("workload %s: KernelIter must be >= 1 when HotKernels > 0 (kernel loops are do-while shaped)", s.Name)
	}
	// A fanout without dispatcher iterations emits the jump table but
	// never the case blocks it points at, failing only deep in Build
	// ("case label missing"); reject it up front.
	if s.Fanout > 0 && s.DispatchIters == 0 {
		return fmt.Errorf("workload %s: Fanout %d with DispatchIters 0 (jump-table cases would never be emitted)", s.Name, s.Fanout)
	}
	// The warm-region counter lives at Footprint+64 in the data region;
	// it and the working set must stay clear of the jump-table page.
	// MaxFootprint implies this today, but the explicit check keeps a
	// future MaxFootprint bump from silently letting data accesses
	// corrupt the dispatcher tables.
	if s.Footprint+64+4 > int(mem.GuestTableBase-mem.GuestDataBase) {
		return fmt.Errorf("workload %s: footprint %d (plus warm counter) reaches the jump-table region", s.Name, s.Footprint)
	}
	return nil
}

// Blocks is the minimizer's size metric for a spec: the number of
// distinct generated code regions (cold blocks, warm blocks, hot
// kernels and dispatcher cases). The fuzzing acceptance bar — a
// minimized reproducer with Blocks() <= 8 — is expressed in this unit.
func (s *Spec) Blocks() int {
	return s.ColdBlocks + s.WarmBlocks + s.HotKernels + s.Fanout
}

func log2i(v int32) int32 {
	n := int32(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Scale returns a copy with the dynamic-size knobs multiplied by f,
// used to grow or shrink runs without changing their character.
func (s Spec) Scale(f float64) Spec {
	mul := func(v int) int {
		n := int(float64(v) * f)
		if n < 1 {
			n = 1
		}
		return n
	}
	s.OuterIters = mul(s.OuterIters)
	return s
}

// emitCtx parameterizes one emission of a Spec into a shared builder.
// A standalone program uses the zero prefix, halts at the end and
// places its dispatcher jump table at mem.GuestTableBase; a phased
// composite gives every member a distinct label prefix and table
// region, and replaces the final halt with a jump to the next phase.
type emitCtx struct {
	prefix    string
	tableBase uint32
	next      string // label to continue at when the phase ends ("" = halt)
}

// pendingTable is a dispatcher jump table whose case addresses can only
// be resolved after the builder's final layout pass.
type pendingTable struct {
	base   uint32
	labels []string
}

// resolve materializes the table as an initialized data segment.
func (t *pendingTable) resolve(b *guest.Builder) (guest.DataSeg, error) {
	raw := make([]byte, 4*len(t.labels))
	for i, label := range t.labels {
		a, ok := b.AddrOf(label)
		if !ok {
			return guest.DataSeg{}, fmt.Errorf("workload: case label %q missing", label)
		}
		raw[4*i+0] = byte(a)
		raw[4*i+1] = byte(a >> 8)
		raw[4*i+2] = byte(a >> 16)
		raw[4*i+3] = byte(a >> 24)
	}
	return guest.DataSeg{Addr: t.base, Bytes: raw}, nil
}

// Build synthesizes the guest program for the spec's frontend.
func (s Spec) Build() (*guest.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.ISA == "rv32" {
		return s.buildRV32()
	}
	b := guest.NewBuilder()
	b.Label("start")
	tbl := s.emitInto(b, emitCtx{tableBase: mem.GuestTableBase})
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	if tbl != nil {
		seg, err := tbl.resolve(b)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", s.Name, err)
		}
		p.Data = append(p.Data, seg)
	}
	return p, nil
}

// emitInto emits the whole benchmark body — initialization, cold and
// warm regions, hot kernels, dispatcher, and the trailing kernel/helper
// functions — into the builder. It returns the dispatcher's jump table
// (to be resolved after layout) or nil when the spec has no indirect
// control flow. Callers label the entry point and resolve the table.
func (s Spec) emitInto(b *guest.Builder, ctx emitCtx) *pendingTable {
	r := rand.New(rand.NewSource(s.Seed))
	lbl := func(name string) string { return ctx.prefix + name }

	// Register plan (callee-clobber conventions are moot here):
	//   EBP: data base pointer (never clobbered)
	//   EDX: outer loop counter
	//   ECX: inner loop counter (kernels, dispatcher)
	//   ESI: rotating data index
	//   EDI: dispatcher case index / accumulator
	//   EAX, EBX: scratch for generated bodies
	b.MovRI(guest.EBP, int32(mem.GuestDataBase))
	b.MovRI(guest.ESI, 0)
	b.MovRI(guest.EDI, 0)
	b.MovRI(guest.EAX, int32(r.Uint32()))
	b.MovRI(guest.EBX, int32(r.Uint32()))

	// Cold one-shot initialization blocks, separated by jumps so each
	// is a distinct basic block in IM.
	for c := 0; c < s.ColdBlocks; c++ {
		s.emitBody(b, r, s.ColdLen, 0.0, 0.3)
		b.Jmp(lbl(fmt.Sprintf("cold%d", c)))
		b.Label(lbl(fmt.Sprintf("cold%d", c)))
	}

	// Warm-region counter in memory (so no register is consumed).
	// Phased composites share the data region, but every phase
	// re-initializes the counter here, so reuse across phases is safe.
	warmCountAddr := int32(s.Footprint + 64)
	b.MovRI(guest.EAX, int32(s.WarmIters))
	b.Store(guest.EBP, warmCountAddr, guest.EAX)

	b.MovRI(guest.EDX, int32(s.OuterIters))
	b.Label(lbl("outer"))

	// Hot kernels.
	for k := 0; k < s.HotKernels; k++ {
		if s.UseCalls {
			b.Call(lbl(fmt.Sprintf("kernel%d", k)))
		} else {
			s.emitKernelInline(b, r, ctx, k)
		}
	}

	// Warm region: executed only while its countdown is positive.
	if s.WarmBlocks > 0 {
		b.Load(guest.EAX, guest.EBP, warmCountAddr)
		b.CmpRI(guest.EAX, 0)
		b.Jcc(guest.CondLE, lbl("warmskip"))
		b.Dec(guest.EAX)
		b.Store(guest.EBP, warmCountAddr, guest.EAX)
		for w := 0; w < s.WarmBlocks; w++ {
			s.emitBody(b, r, s.WarmLen, s.FPFrac/2, 0.3)
			b.Jmp(lbl(fmt.Sprintf("warm%d", w)))
			b.Label(lbl(fmt.Sprintf("warm%d", w)))
		}
		b.Label(lbl("warmskip"))
	}

	// Dispatcher: indirect jumps through a jump table.
	var tbl *pendingTable
	if s.Fanout > 0 && s.DispatchIters > 0 {
		b.MovRI(guest.ECX, int32(s.DispatchIters))
		b.Label(lbl("dispatch"))
		b.MovRI(guest.EAX, int32(ctx.tableBase))
		b.LoadIdx(guest.EAX, guest.EAX, guest.EDI, 4, 0)
		b.JmpInd(guest.EAX)
		for c := 0; c < s.Fanout; c++ {
			b.Label(lbl(fmt.Sprintf("case%d", c)))
			s.emitBody(b, r, 4+c%5, 0, 0.25)
			if s.CaseCalls {
				b.Call(lbl("casehelper"))
			}
			b.Jmp(lbl("dispjoin"))
		}
		b.Label(lbl("dispjoin"))
		b.Inc(guest.EDI)
		b.CmpRI(guest.EDI, int32(s.Fanout))
		b.Jcc(guest.CondL, lbl("dispnowrap"))
		b.MovRI(guest.EDI, 0)
		b.Label(lbl("dispnowrap"))
		b.Dec(guest.ECX)
		b.CmpRI(guest.ECX, 0)
		b.Jcc(guest.CondG, lbl("dispatch"))
	}

	b.Dec(guest.EDX)
	b.CmpRI(guest.EDX, 0)
	b.Jcc(guest.CondG, lbl("outer"))
	if ctx.next == "" {
		b.Halt()
	} else {
		b.Jmp(ctx.next)
	}

	// Kernel bodies as functions.
	if s.UseCalls {
		for k := 0; k < s.HotKernels; k++ {
			b.Label(lbl(fmt.Sprintf("kernel%d", k)))
			s.emitKernelBody(b, r, ctx, k)
			b.Ret()
		}
	}
	if s.Fanout > 0 && s.CaseCalls {
		b.Label(lbl("casehelper"))
		s.emitBody(b, r, 5, 0, 0.3)
		b.Ret()
	}

	// Jump table data, resolved by the caller after layout.
	if s.Fanout > 0 {
		tbl = &pendingTable{base: ctx.tableBase}
		for c := 0; c < s.Fanout; c++ {
			tbl.labels = append(tbl.labels, lbl(fmt.Sprintf("case%d", c)))
		}
	}
	return tbl
}

// emitKernelInline emits kernel k as an inline loop.
func (s Spec) emitKernelInline(b *guest.Builder, r *rand.Rand, ctx emitCtx, k int) {
	b.MovRI(guest.ECX, int32(s.KernelIter))
	b.Label(ctx.prefix + fmt.Sprintf("kloop%d", k))
	s.emitBody(b, r, s.KernelLen, s.FPFrac, s.MemFrac)
	b.Inc(guest.ESI)
	b.Dec(guest.ECX)
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondG, ctx.prefix+fmt.Sprintf("kloop%d", k))
}

// emitKernelBody emits kernel k's loop for the function form.
func (s Spec) emitKernelBody(b *guest.Builder, r *rand.Rand, ctx emitCtx, k int) {
	b.MovRI(guest.ECX, int32(s.KernelIter))
	b.Label(ctx.prefix + fmt.Sprintf("kbody%d", k))
	s.emitBody(b, r, s.KernelLen, s.FPFrac, s.MemFrac)
	b.Inc(guest.ESI)
	b.Dec(guest.ECX)
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondG, ctx.prefix+fmt.Sprintf("kbody%d", k))
}

// emitBody emits n mostly-straight-line instructions mixing integer
// ALU, FP and memory operations, with occasional short forward
// conditional branches (BranchFrac) that split the code into several
// basic blocks, as compiler output does. It uses only EAX/EBX as
// scratch and addresses data via EBP+masked(ESI), so control registers
// survive.
func (s Spec) emitBody(b *guest.Builder, r *rand.Rand, n int, fpFrac, memFrac float64) {
	brFrac := s.BranchFrac
	mask := int32(1024 - 1)
	if s.Footprint > 0 {
		mask = int32(s.Footprint - 1)
	}
	stride := int32(4)
	if s.Stride != 0 {
		stride = int32(s.Stride)
	}
	for i := 0; i < n; i++ {
		x := r.Float64()
		switch {
		case x < brFrac:
			// Short forward skip: cmp; jcc over two instructions. The
			// direction depends on runtime data, giving the branch
			// predictor real work.
			l := fmt.Sprintf("skip_%d", b.InstCount())
			b.TestRR(guest.EAX, guest.EAX)
			conds := []guest.Cond{guest.CondE, guest.CondNE, guest.CondS, guest.CondNS}
			b.Jcc(conds[r.Intn(len(conds))], l)
			b.AddRI(guest.EBX, int32(r.Intn(64)))
			b.XorRR(guest.EAX, guest.EBX)
			b.Label(l)
			i += 3
		case x < brFrac+memFrac:
			if s.Irregular {
				// Hash-indexed access: EAX = EBP + (h(ESI+k) & mask);
				// the stride prefetcher cannot cover these.
				b.Lea(guest.EAX, guest.ESI, int32(r.Intn(1<<20)))
				b.MovRI(guest.EBX, 0x61c88647) // golden-ratio multiplier
				b.ImulRR(guest.EAX, guest.EBX)
				b.Shr(guest.EAX, 8)
				b.AndRI(guest.EAX, mask&^3)
				b.AddRR(guest.EAX, guest.EBP)
				if r.Intn(2) == 0 {
					b.Load(guest.EBX, guest.EAX, 0)
				} else {
					b.MovRI(guest.EBX, int32(r.Uint32()))
					b.Store(guest.EAX, 0, guest.EBX)
					i++
				}
				i += 6
			} else {
				// Masked strided access: EAX = EBP + ((ESI << log2 stride) & mask).
				b.MovRR(guest.EAX, guest.ESI)
				b.Shl(guest.EAX, log2i(stride))
				b.AndRI(guest.EAX, mask&^3)
				b.AddRR(guest.EAX, guest.EBP)
				if r.Intn(2) == 0 {
					b.Load(guest.EBX, guest.EAX, 0)
				} else {
					b.Store(guest.EAX, 0, guest.EBX)
				}
				i += 4
			}
		case x < brFrac+memFrac+fpFrac:
			f1 := guest.FReg(r.Intn(4))
			f2 := guest.FReg(r.Intn(4))
			switch r.Intn(4) {
			case 0:
				b.FAdd(f1, f2)
			case 1:
				b.FMul(f1, f2)
			case 2:
				b.FLoad(f1, guest.EBP, int32(r.Intn(64))*8)
				i++
			default:
				b.FStore(guest.EBP, int32(r.Intn(64))*8, f1)
				i++
			}
		default:
			switch r.Intn(8) {
			case 0:
				b.AddRR(guest.EAX, guest.EBX)
			case 1:
				b.SubRI(guest.EBX, int32(r.Intn(100)))
			case 2:
				b.XorRR(guest.EAX, guest.EBX)
			case 3:
				b.Shl(guest.EAX, int32(1+r.Intn(7)))
			case 4:
				b.MovRR(guest.EBX, guest.EAX)
			case 5:
				b.AndRI(guest.EAX, int32(r.Uint32()))
			case 6:
				b.Inc(guest.EBX)
			default:
				b.OrRR(guest.EBX, guest.EAX)
			}
		}
	}
}
