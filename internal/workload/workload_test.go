package workload

import (
	"testing"

	"repro/internal/x86emu"
)

func TestCatalogComplete(t *testing.T) {
	c := Catalog()
	if len(c) != 48 {
		t.Fatalf("catalog has %d benchmarks, want 48", len(c))
	}
	counts := map[Suite]int{}
	names := map[string]bool{}
	for _, s := range c {
		counts[s.Suite]++
		if names[s.Name] {
			t.Errorf("duplicate benchmark name %q", s.Name)
		}
		names[s.Name] = true
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	// Paper suite sizes: 12 INT, 16 FP, 8 Physicsbench, 12 Mediabench.
	if counts[SPECInt] != 12 || counts[SPECFP] != 16 || counts[Physics] != 8 || counts[Media] != 12 {
		t.Fatalf("suite sizes: %v", counts)
	}
}

func TestOutliersInCatalog(t *testing.T) {
	for _, o := range Outliers() {
		if _, err := ByName(o); err != nil {
			t.Errorf("outlier %s missing: %v", o, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestAllBenchmarksBuildAndHalt(t *testing.T) {
	// Every catalog entry must assemble and run to completion on the
	// reference emulator at a reduced scale.
	for _, s := range Catalog() {
		s := s.Scale(0.1)
		p, err := s.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", s.Name, err)
		}
		if p.StaticInst == 0 || len(p.Code) == 0 {
			t.Fatalf("%s: empty program", s.Name)
		}
		e := x86emu.New(p)
		if err := e.Run(100_000_000); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if e.DynInsts == 0 {
			t.Fatalf("%s: no instructions executed", s.Name)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	s, err := ByName("403.gcc")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Code) != len(p2.Code) {
		t.Fatal("non-deterministic build size")
	}
	for i := range p1.Code {
		if p1.Code[i] != p2.Code[i] {
			t.Fatalf("non-deterministic code at byte %d", i)
		}
	}
}

func TestScale(t *testing.T) {
	s, _ := ByName("401.bzip2")
	s2 := s.Scale(2)
	if s2.OuterIters != s.OuterIters*2 {
		t.Fatalf("scale: %d vs %d", s2.OuterIters, s.OuterIters)
	}
	s0 := s.Scale(0.0001)
	if s0.OuterIters < 1 {
		t.Fatal("scale floor broken")
	}
}

func TestIndirectDensityDiffers(t *testing.T) {
	// perlbench-like must execute far more indirect branches per
	// instruction than bzip2-like.
	density := func(name string) float64 {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s = s.Scale(0.2)
		p, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		e := x86emu.New(p)
		if err := e.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		return float64(e.DynIndirect) / float64(e.DynInsts)
	}
	perl := density("400.perlbench")
	bzip := density("401.bzip2")
	if perl < 20*bzip {
		t.Fatalf("indirect density: perlbench %.5f vs bzip2 %.5f", perl, bzip)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	s := Spec{Name: "x", Footprint: 1000}
	if err := s.Validate(); err == nil {
		t.Fatal("non-power-of-two footprint accepted")
	}
	s = Spec{Name: "x", Stride: 3}
	if err := s.Validate(); err == nil {
		t.Fatal("non-power-of-two stride accepted")
	}
	s = Spec{Name: "x", Fanout: 100}
	if err := s.Validate(); err == nil {
		t.Fatal("excess fanout accepted")
	}
}
