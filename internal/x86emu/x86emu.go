// Package x86emu is the x86 instance of the reference-emulator
// interface in package emu. It predates the second guest frontend;
// existing callers keep the x86-pinned constructor and type name,
// while ISA-agnostic code (the TOL cosim shadow) uses emu.New
// directly.
package x86emu

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/guest"
)

// Emulator is the authoritative guest-ISA functional emulator.
type Emulator = emu.Emulator

// New creates an x86 emulator with the program loaded and registers
// initialized. It refuses programs built for another frontend — those
// go through emu.New, which resolves the frontend from the program.
func New(p *guest.Program) *Emulator {
	if p.ISA != "" && p.ISA != guest.X86.Name {
		panic(fmt.Sprintf("x86emu: program is %q, not x86; use emu.New", p.ISA))
	}
	return emu.New(p)
}
