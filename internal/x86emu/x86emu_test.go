package x86emu

import (
	"testing"

	"repro/internal/guest"
)

func fibProgram(n int32) *guest.Program {
	b := guest.NewBuilder()
	b.Label("start")
	b.MovRI(guest.EAX, 0) // fib(0)
	b.MovRI(guest.EBX, 1) // fib(1)
	b.MovRI(guest.ECX, n)
	b.Label("loop")
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondE, "done")
	b.MovRR(guest.EDX, guest.EBX)
	b.AddRR(guest.EBX, guest.EAX)
	b.MovRR(guest.EAX, guest.EDX)
	b.Dec(guest.ECX)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustBuild()
}

func TestFibonacci(t *testing.T) {
	e := New(fibProgram(20))
	if err := e.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if e.State.Regs[guest.EAX] != 6765 {
		t.Fatalf("fib(20) = %d, want 6765", e.State.Regs[guest.EAX])
	}
	if !e.Halted {
		t.Fatal("not halted")
	}
}

func TestStatsCounted(t *testing.T) {
	e := New(fibProgram(10))
	if err := e.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if e.DynInsts == 0 || e.DynBranches == 0 {
		t.Fatalf("stats empty: insts=%d branches=%d", e.DynInsts, e.DynBranches)
	}
	// 3 setup + 10 iterations of 7 (cmp,jcc,mov,add,mov,dec,jmp) +
	// final cmp+jcc = 75.
	if e.DynInsts != 75 {
		t.Fatalf("DynInsts = %d, want 75", e.DynInsts)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	b := guest.NewBuilder()
	b.Label("start")
	b.Jmp("start") // infinite loop
	p := b.MustBuild()
	e := New(p)
	if err := e.Run(1000); err == nil {
		t.Fatal("expected budget error")
	}
}

func TestStepAfterHaltIsNoop(t *testing.T) {
	e := New(fibProgram(1))
	if err := e.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	n := e.DynInsts
	res, err := e.Step()
	if err != nil || !res.Halted {
		t.Fatalf("step after halt: res=%+v err=%v", res, err)
	}
	if e.DynInsts != n {
		t.Fatal("halted step changed stats")
	}
}

func TestStepN(t *testing.T) {
	e := New(fibProgram(10))
	done, err := e.StepN(5)
	if err != nil || done != 5 {
		t.Fatalf("StepN = %d, %v", done, err)
	}
	if e.DynInsts != 5 {
		t.Fatalf("DynInsts = %d", e.DynInsts)
	}
}

func TestIndirectHistogram(t *testing.T) {
	b := guest.NewBuilder()
	b.Label("start")
	b.MovLabel(guest.EAX, "t1")
	b.JmpInd(guest.EAX)
	b.Label("t1")
	b.MovLabel(guest.EAX, "t2")
	b.JmpInd(guest.EAX)
	b.Label("t2")
	b.Halt()
	e := New(b.MustBuild())
	e.TakenTargets = make(map[uint32]uint64)
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.DynIndirect != 2 {
		t.Fatalf("DynIndirect = %d, want 2", e.DynIndirect)
	}
	if len(e.TakenTargets) != 2 {
		t.Fatalf("histogram has %d targets", len(e.TakenTargets))
	}
}
