// Command benchdiff compares two `go test -bench` text outputs and
// reports per-benchmark deltas, failing when any shared benchmark
// regressed beyond a threshold. It is the regression gate of the CI
// perf job and the generator of the committed BENCH_*.json perf
// trajectory records.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 5 . > old.txt   # base
//	go test -run '^$' -bench . -benchmem -count 5 . > new.txt   # head
//	go run ./tools/benchdiff -threshold 10 -json BENCH.json old.txt new.txt
//
// Multiple -count runs of one benchmark are reduced to the median
// ns/op (medians resist scheduler noise better than means). Benchmarks
// present on only one side are reported but never fail the gate, so
// adding or renaming benchmarks does not break CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed benchmark result line.
type sample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasMem      bool
}

// parseBench extracts benchmark samples from go test -bench output.
// Lines look like:
//
//	BenchmarkName[-P]   N   123.4 ns/op   56 B/op   7 allocs/op   8 extra/op
func parseBench(path string) (map[string][]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]sample)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the GOMAXPROCS suffix if numeric.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var s sample
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp, ok = v, true
			case "B/op":
				s.bytesPerOp, s.hasMem = v, true
			case "allocs/op":
				s.allocsPerOp, s.hasMem = v, true
			}
		}
		if ok {
			out[name] = append(out[name], s)
		}
	}
	return out, sc.Err()
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	if n := len(xs); n%2 == 1 {
		return xs[n/2]
	} else {
		return (xs[n/2-1] + xs[n/2]) / 2
	}
}

func reduce(samples []sample) sample {
	var ns, bs, as []float64
	hasMem := false
	for _, s := range samples {
		ns = append(ns, s.nsPerOp)
		if s.hasMem {
			bs = append(bs, s.bytesPerOp)
			as = append(as, s.allocsPerOp)
			hasMem = true
		}
	}
	return sample{
		nsPerOp:     median(ns),
		bytesPerOp:  median(bs),
		allocsPerOp: median(as),
		hasMem:      hasMem,
	}
}

// Entry is one benchmark comparison in the JSON report.
type Entry struct {
	Name        string   `json:"name"`
	OldNsOp     float64  `json:"old_ns_op,omitempty"`
	NewNsOp     float64  `json:"new_ns_op,omitempty"`
	Speedup     float64  `json:"speedup,omitempty"`   // old/new; >1 = faster
	DeltaPct    float64  `json:"delta_pct,omitempty"` // (new-old)/old*100; <0 = faster
	OldAllocsOp *float64 `json:"old_allocs_op,omitempty"`
	NewAllocsOp *float64 `json:"new_allocs_op,omitempty"`
	Status      string   `json:"status"` // ok | regressed | old-only | new-only
}

// Report is the benchdiff JSON output (the BENCH_*.json schema).
type Report struct {
	ThresholdPct   float64 `json:"threshold_pct"`
	GeomeanSpeedup float64 `json:"geomean_speedup"`
	Regressions    int     `json:"regressions"`
	Benchmarks     []Entry `json:"benchmarks"`
}

func main() {
	threshold := flag.Float64("threshold", 10, "fail when a shared benchmark's ns/op grows by more than this percentage")
	jsonOut := flag.String("json", "", "also write the comparison report as JSON to this file")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-json out.json] old.txt new.txt")
		os.Exit(2)
	}
	old, err := parseBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	nu, err := parseBench(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(old)+len(nu))
	seen := map[string]bool{}
	for n := range old {
		names, seen[n] = append(names, n), true
	}
	for n := range nu {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	rep := Report{ThresholdPct: *threshold}
	logSum, logN := 0.0, 0
	for _, n := range names {
		e := Entry{Name: n, Status: "ok"}
		os_, haveOld := old[n]
		ns_, haveNew := nu[n]
		switch {
		case !haveNew:
			e.Status = "old-only"
			e.OldNsOp = reduce(os_).nsPerOp
		case !haveOld:
			e.Status = "new-only"
			s := reduce(ns_)
			e.NewNsOp = s.nsPerOp
			if s.hasMem {
				v := s.allocsPerOp
				e.NewAllocsOp = &v
			}
		default:
			o, s := reduce(os_), reduce(ns_)
			e.OldNsOp, e.NewNsOp = o.nsPerOp, s.nsPerOp
			if o.nsPerOp > 0 {
				e.Speedup = o.nsPerOp / s.nsPerOp
				e.DeltaPct = (s.nsPerOp - o.nsPerOp) / o.nsPerOp * 100
				logSum += math.Log(e.Speedup)
				logN++
			}
			if o.hasMem {
				v := o.allocsPerOp
				e.OldAllocsOp = &v
			}
			if s.hasMem {
				v := s.allocsPerOp
				e.NewAllocsOp = &v
			}
			if e.DeltaPct > *threshold {
				e.Status = "regressed"
				rep.Regressions++
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	if logN > 0 {
		rep.GeomeanSpeedup = math.Exp(logSum / float64(logN))
	}

	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "%-44s %14s %14s %9s %9s  %s\n", "benchmark", "old ns/op", "new ns/op", "speedup", "delta%", "status")
	for _, e := range rep.Benchmarks {
		fmt.Fprintf(w, "%-44s %14.0f %14.0f %8.2fx %+8.1f%%  %s\n",
			e.Name, e.OldNsOp, e.NewNsOp, e.Speedup, e.DeltaPct, e.Status)
	}
	fmt.Fprintf(w, "geomean speedup: %.2fx over %d shared benchmarks\n", rep.GeomeanSpeedup, logN)
	w.Flush()

	if *jsonOut != "" {
		b, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}
	if rep.Regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond %.1f%%\n", rep.Regressions, *threshold)
		os.Exit(1)
	}
}
