// Command docscheck verifies that documentation stays truthful: every
// backticked `pkg.Identifier` (or `pkg.Type.Member`) reference in the
// given markdown files must name an exported identifier that actually
// exists in the corresponding internal package. CI runs it over
// docs/*.md and README.md, so the architecture walkthrough cannot
// silently rot as the code evolves.
//
// Usage:
//
//	go run ./tools/docscheck docs/ARCHITECTURE.md docs/EXPERIMENTS.md README.md
//	go run ./tools/docscheck -must workload.Program,workload.Register docs/*.md
//
// -must names identifiers that are required to appear (inside
// backticks) in at least one of the checked files, so new API surface
// cannot ship undocumented: each must both exist in its package and be
// referenced somewhere in the given docs.
//
// References are recognized inside backticks as <pkg>.<Exported> with
// an optional .<Member> tail, where <pkg> is one of the repository's
// package names (guest, emu, x86emu, host, mem, tol, timing, darco,
// workload, experiments, sweep, stats, store, serve, snapshot,
// sample, fuzz).
// Member references are checked
// against the type's method and struct-field sets; anything deeper is
// accepted once the first two levels resolve.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// packages maps doc-reference package names to their source
// directories, relative to the repository root.
var packages = map[string]string{
	"guest":       "internal/guest",
	"emu":         "internal/emu",
	"x86emu":      "internal/x86emu",
	"host":        "internal/host",
	"mem":         "internal/mem",
	"tol":         "internal/tol",
	"timing":      "internal/timing",
	"darco":       "internal/darco",
	"workload":    "internal/workload",
	"experiments": "internal/experiments",
	"sweep":       "internal/sweep",
	"stats":       "internal/stats",
	"store":       "internal/store",
	"serve":       "internal/serve",
	"snapshot":    "internal/snapshot",
	"sample":      "internal/sample",
	"fuzz":        "internal/fuzz",
}

// pkgIndex holds one package's exported surface.
type pkgIndex struct {
	idents  map[string]bool            // top-level exported funcs/types/consts/vars
	members map[string]map[string]bool // type -> exported methods + struct fields
}

func main() {
	must := flag.String("must", "", "comma-separated pkg.Ident references that must appear in the checked files")
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: docscheck [-must pkg.Ident,...] <markdown files...>")
		os.Exit(2)
	}
	root, err := repoRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	index := map[string]*pkgIndex{}
	for name, dir := range packages {
		idx, err := indexPackage(filepath.Join(root, dir))
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: indexing %s: %v\n", dir, err)
			os.Exit(2)
		}
		index[name] = idx
	}

	failures := 0
	seen := map[string]bool{}
	for _, path := range files {
		for _, bad := range checkFile(path, index, seen) {
			fmt.Fprintln(os.Stderr, bad)
			failures++
		}
	}
	if *must != "" {
		for _, ref := range strings.Split(*must, ",") {
			ref = strings.TrimSpace(ref)
			if ref == "" {
				continue
			}
			pkg, rest, ok := strings.Cut(ref, ".")
			idx := index[pkg]
			if !ok || idx == nil {
				fmt.Fprintf(os.Stderr, "docscheck: -must %s: unknown package\n", ref)
				failures++
				continue
			}
			ident := rest
			if dot := strings.IndexByte(rest, '.'); dot >= 0 {
				ident = rest[:dot]
			}
			if !idx.idents[ident] {
				fmt.Fprintf(os.Stderr, "docscheck: -must %s: identifier does not exist\n", ref)
				failures++
				continue
			}
			if member := strings.TrimPrefix(strings.TrimPrefix(rest, ident), "."); member != "" {
				first := member
				if dot := strings.IndexByte(first, '.'); dot >= 0 {
					first = first[:dot]
				}
				if members, isType := idx.members[ident]; isType && !members[first] {
					fmt.Fprintf(os.Stderr, "docscheck: -must %s: %s has no exported member %s\n", ref, ident, first)
					failures++
					continue
				}
			}
			if !seen[ref] {
				fmt.Fprintf(os.Stderr, "docscheck: -must %s: not documented in any checked file\n", ref)
				failures++
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d stale or missing reference(s)\n", failures)
		os.Exit(1)
	}
}

// repoRoot walks up from the working directory to the directory
// containing go.mod, so the tool works from any subdirectory.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// refPattern matches `pkg.Exported` or `pkg.Type.Member` inside
// backticks. Lowercase tails (fields that are unexported, flag names,
// file paths) never match.
var refPattern = regexp.MustCompile("`([a-z][a-z0-9]*)\\.([A-Z][A-Za-z0-9]*)((?:\\.[A-Z][A-Za-z0-9]*)*)`")

// checkFile verifies one markdown file's references and records every
// resolved pkg.Ident into seen (for -must coverage accounting).
func checkFile(path string, index map[string]*pkgIndex, seen map[string]bool) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var bad []string
	for lineNo, line := range strings.Split(string(data), "\n") {
		for _, m := range refPattern.FindAllStringSubmatch(line, -1) {
			pkg, ident, tail := m[1], m[2], m[3]
			idx, known := index[pkg]
			if !known {
				continue // not a package reference (e.g. a file path)
			}
			if !idx.idents[ident] {
				bad = append(bad, fmt.Sprintf("%s:%d: %s.%s does not exist", path, lineNo+1, pkg, ident))
				continue
			}
			seen[pkg+"."+ident] = true
			if tail != "" {
				seen[pkg+"."+ident+tail] = true
			}
			if tail == "" {
				continue
			}
			member := strings.TrimPrefix(tail, ".")
			if dot := strings.IndexByte(member, '.'); dot >= 0 {
				member = member[:dot] // check the first member level only
			}
			members, isType := idx.members[ident]
			if !isType {
				continue // pkg.Func().Something etc. — accept
			}
			if !members[member] {
				bad = append(bad, fmt.Sprintf("%s:%d: %s.%s has no exported member %s",
					path, lineNo+1, pkg, ident, member))
			}
		}
	}
	return bad
}

// indexPackage parses every non-test Go file in dir and collects the
// exported surface.
func indexPackage(dir string) (*pkgIndex, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	idx := &pkgIndex{idents: map[string]bool{}, members: map[string]map[string]bool{}}
	addMember := func(typ, name string) {
		if !ast.IsExported(name) {
			return
		}
		if idx.members[typ] == nil {
			idx.members[typ] = map[string]bool{}
		}
		idx.members[typ][name] = true
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Recv == nil {
						if ast.IsExported(d.Name.Name) {
							idx.idents[d.Name.Name] = true
						}
						continue
					}
					addMember(recvTypeName(d.Recv), d.Name.Name)
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if !ast.IsExported(s.Name.Name) {
								continue
							}
							idx.idents[s.Name.Name] = true
							indexTypeMembers(s, addMember)
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if ast.IsExported(n.Name) {
									idx.idents[n.Name] = true
								}
							}
						}
					}
				}
			}
		}
	}
	return idx, nil
}

// recvTypeName extracts the receiver's type name ("T" from T or *T).
func recvTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// indexTypeMembers records exported struct fields and interface
// methods of a type declaration.
func indexTypeMembers(s *ast.TypeSpec, add func(typ, name string)) {
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			for _, n := range f.Names {
				add(s.Name.Name, n.Name)
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			for _, n := range m.Names {
				add(s.Name.Name, n.Name)
			}
		}
	}
}
