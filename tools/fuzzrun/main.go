// Command fuzzrun is the differential-fuzzing driver: it generates
// seeded random workloads (the workload fuzz: source), sweeps each one
// across a configuration matrix with co-simulation enabled, shrinks
// any divergence to a minimal reproducer, and files reproducers as
// trace: regression artifacts.
//
//	go run ./tools/fuzzrun -n 8 -seed 1                  # smoke sweep
//	go run ./tools/fuzzrun -n 64 -configs full -json     # nightly depth
//	go run ./tools/fuzzrun -n 2 -fault bbm-drop-inc      # mutation test
//
// The exit status is 0 when every program survived every check, 1 when
// any divergence or cross-check failure was found (the JSON or text
// report describes it), 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/darco"
	"repro/internal/fuzz"
	"repro/internal/tol"
	"repro/internal/workload"
)

type programReport struct {
	Seed      int64                `json:"seed"`
	Profile   string               `json:"profile"`
	Name      string               `json:"name"`
	Report    *fuzz.Report         `json:"report"`
	Minimized *fuzz.MinimizeResult `json:"minimized,omitempty"`
	Artifact  string               `json:"artifact,omitempty"`
}

type runReport struct {
	Configs     string          `json:"configs"`
	Cells       int             `json:"cells"`
	Programs    []programReport `json:"programs"`
	Divergences int             `json:"divergences"`
	Failures    int             `json:"failures"` // cross-check/leg failures without a cosim divergence
	Coverage    fuzz.Coverage   `json:"coverage"`
}

func main() {
	var (
		n        = flag.Int("n", 8, "number of generated programs")
		seed     = flag.Int64("seed", 1, "first seed; program i uses seed+i")
		profile  = flag.String("profile", "", "generation profile (default: rotate "+strings.Join(workload.FuzzProfiles(), ", ")+")")
		configs  = flag.String("configs", "smoke", "configuration matrix: smoke or full")
		minimize = flag.Bool("minimize", true, "shrink diverging specs to minimal reproducers")
		out      = flag.String("out", "testdata/regressions", "directory for minimized regression artifacts (empty: don't write)")
		maxInsts = flag.Int("max-insts", 200_000, "per-program dynamic guest instruction clamp")
		fault    = flag.String("fault", "", "inject a registered translator fault for mutation testing ("+strings.Join(tol.Faults(), ", ")+")")
		snapshot = flag.Bool("snapshot", true, "cross-check snapshot-mid-run/resume against uninterrupted runs")
		sampled  = flag.Bool("sampled", true, "cross-check sampled simulation against full runs")
		workers  = flag.Int("workers", 0, "session worker-pool size (0: GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "emit the full report as JSON on stdout")
	)
	flag.Parse()

	cells, err := fuzz.Matrix(*configs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	o := fuzz.New(cells)
	if *workers > 0 {
		o.Session = darco.NewSession(darco.WithWorkers(*workers))
	}
	o.SnapshotCheck = *snapshot
	o.SampledCheck = *sampled
	if *fault != "" {
		f := *fault
		o.Extra = []darco.Option{func(c *darco.Config) { c.TOL.Fault = f }}
	}

	ctx := context.Background()
	rep := runReport{Configs: *configs, Cells: len(cells)}
	for i := 0; i < *n; i++ {
		s := *seed + int64(i)
		prof := *profile
		if prof == "" {
			prof = workload.FuzzProfiles()[i%len(workload.FuzzProfiles())]
		}
		spec, err := workload.GenSpec(s, prof)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		spec = spec.Clamp(*maxInsts)

		pr := programReport{Seed: s, Profile: prof, Name: spec.Name}
		pr.Report, err = o.Check(ctx, spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzzrun: %s: %v\n", spec.Name, err)
			os.Exit(2)
		}
		rep.Coverage = addCoverage(rep.Coverage, pr.Report.Coverage)
		if f := pr.Report.Finding(); f != nil {
			rep.Divergences++
			if *minimize {
				min, err := o.Minimize(ctx, f, 0)
				if err != nil {
					fmt.Fprintf(os.Stderr, "fuzzrun: minimize %s: %v\n", spec.Name, err)
					os.Exit(2)
				}
				pr.Minimized = min
				if *out != "" {
					pr.Artifact, err = fuzz.WriteRegression(*out, min.Spec)
					if err != nil {
						fmt.Fprintf(os.Stderr, "fuzzrun: file regression for %s: %v\n", spec.Name, err)
						os.Exit(2)
					}
				}
			}
		} else if !pr.Report.Clean() {
			rep.Failures++
		}
		rep.Programs = append(rep.Programs, pr)
		if !*jsonOut {
			printProgram(&pr)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		fmt.Printf("fuzzrun: %d programs x %d cells (%s): %d divergences, %d failures\n",
			len(rep.Programs), rep.Cells, rep.Configs, rep.Divergences, rep.Failures)
		c := rep.Coverage
		fmt.Printf("coverage: %d guest insts, %d BB translations, %d promotions, %d evictions, %d retranslations, %d IBTC fills, %d IBTC hits, %d cosim checks\n",
			c.DynTotal, c.BBTranslated, c.Promotions, c.Evictions, c.Retranslations, c.IBTCFills, c.IBTCHits, c.CosimChecks)
		for _, isa := range []string{"x86", "rv32"} {
			if dyn, ok := c.ByISA[isa]; ok {
				fmt.Printf("coverage[%s]: %d guest insts\n", isa, dyn)
			}
		}
	}
	if rep.Divergences > 0 || rep.Failures > 0 {
		os.Exit(1)
	}
}

func addCoverage(a, b fuzz.Coverage) fuzz.Coverage {
	a.DynTotal += b.DynTotal
	a.BBTranslated += b.BBTranslated
	a.Promotions += b.Promotions
	a.Evictions += b.Evictions
	a.Retranslations += b.Retranslations
	a.IBTCFills += b.IBTCFills
	a.IBTCHits += b.IBTCHits
	a.Chains += b.Chains
	a.CosimChecks += b.CosimChecks
	for isa, dyn := range b.ByISA {
		if a.ByISA == nil {
			a.ByISA = make(map[string]uint64)
		}
		a.ByISA[isa] += dyn
	}
	return a
}

func printProgram(pr *programReport) {
	status := "clean"
	switch {
	case pr.Report.Finding() != nil:
		status = "DIVERGED"
	case !pr.Report.Clean():
		status = "FAILED"
	}
	fmt.Printf("%-24s seed=%-6d %-8s %s\n", pr.Name, pr.Seed, pr.Profile, status)
	for _, c := range pr.Report.Cells {
		if c.Div != nil {
			fmt.Printf("  %s:\n%s", c.Name, indent(c.Div.Report()))
		} else if c.Err != "" {
			fmt.Printf("  %s: error: %s\n", c.Name, c.Err)
		}
	}
	for _, leg := range []struct{ name, msg string }{
		{"cross-check", pr.Report.CrossCheck},
		{"snapshot", pr.Report.SnapshotErr},
		{"sampled", pr.Report.SampledErr},
	} {
		if leg.msg != "" {
			fmt.Printf("  %s: %s\n", leg.name, leg.msg)
		}
	}
	if pr.Minimized != nil {
		fmt.Printf("  minimized to %d blocks in %d steps (%d attempts)\n",
			pr.Minimized.Blocks, pr.Minimized.Steps, pr.Minimized.Attempts)
	}
	if pr.Artifact != "" {
		fmt.Printf("  regression filed: %s\n", pr.Artifact)
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "    " + strings.Join(lines, "\n    ") + "\n"
}
