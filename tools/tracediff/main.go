// Command tracediff compares the summaries of two darco JSON record
// files (cmd/darco or cmd/darco-suite -json output) benchmark by
// benchmark. CI uses it to close the record/replay loop: a run
// recorded with darco -record and replayed with -workload trace:...
// must produce byte-equal summaries, because the trace captures the
// exact guest image the recorded run executed.
//
// Usage:
//
//	tracediff direct.json replay.json
//
// Records are matched by benchmark name; both files must cover the
// same set. Only the summary digest is compared — scale and mode
// labels may legitimately differ (a replayed trace always reports
// scale 1: the image was recorded already scaled).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"

	"repro/internal/darco"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: tracediff <records-a.json> <records-b.json>")
		os.Exit(2)
	}
	a, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracediff:", err)
		os.Exit(2)
	}
	b, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracediff:", err)
		os.Exit(2)
	}
	if len(a) == 0 {
		fmt.Fprintf(os.Stderr, "tracediff: %s holds no records\n", os.Args[1])
		os.Exit(2)
	}
	failures := 0
	for name, ra := range a {
		rb, ok := b[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "tracediff: %s only in %s\n", name, os.Args[1])
			failures++
			continue
		}
		if ra.Error != "" || rb.Error != "" {
			fmt.Fprintf(os.Stderr, "tracediff: %s failed: a=%q b=%q\n", name, ra.Error, rb.Error)
			failures++
			continue
		}
		if !reflect.DeepEqual(ra.Summary, rb.Summary) {
			fmt.Fprintf(os.Stderr, "tracediff: %s summaries differ\n", name)
			diffJSON(ra.Summary, rb.Summary)
			failures++
		}
	}
	for name := range b {
		if _, ok := a[name]; !ok {
			fmt.Fprintf(os.Stderr, "tracediff: %s only in %s\n", name, os.Args[2])
			failures++
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
	fmt.Printf("tracediff: %d benchmark summaries identical\n", len(a))
}

func load(path string) (map[string]darco.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := darco.DecodeRecords(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]darco.Record, len(recs))
	for _, r := range recs {
		out[r.Benchmark] = r
	}
	return out, nil
}

// diffJSON prints the top-level summary fields that disagree.
func diffJSON(a, b darco.Summary) {
	flat := func(s darco.Summary) map[string]any {
		raw, _ := json.Marshal(s)
		var m map[string]any
		json.Unmarshal(raw, &m)
		return m
	}
	ma, mb := flat(a), flat(b)
	for k, va := range ma {
		if !reflect.DeepEqual(va, mb[k]) {
			fmt.Fprintf(os.Stderr, "  %s: %v != %v\n", k, va, mb[k])
		}
	}
}
